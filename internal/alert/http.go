package alert

import (
	"encoding/json"
	"net/http"
)

// The alert API, mounted onto the agent's HTTPSink next to /metrics and
// /query (HTTPSink.Handle keeps the monitor package free of an alert
// dependency):
//
//	GET /alerts  active alert instances (pending and firing)
//	GET /rules   per-rule bookkeeping: spec, cadence, evaluations,
//	             last evaluation time, last error, instance counts
//
// Alert *history* needs no endpoint of its own: transitions are recorded
// as "alert/<name>" store series, so /query?metric=alert/NAME&scope=...
// windows them like any metric.

// alertsResponse is the GET /alerts payload.
type alertsResponse struct {
	Alerts []InstanceStatus `json:"alerts"`
}

// HandleAlerts serves the active alert instances as JSON.
func (e *Engine) HandleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	alerts := e.Alerts()
	if alerts == nil {
		alerts = []InstanceStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(alertsResponse{Alerts: alerts})
}

// rulesResponse is the GET /rules payload.
type rulesResponse struct {
	Rules []RuleStatus `json:"rules"`
}

// HandleRules serves the per-rule bookkeeping as JSON.
func (e *Engine) HandleRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	rules := e.RuleStatuses()
	if rules == nil {
		rules = []RuleStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rulesResponse{Rules: rules})
}
