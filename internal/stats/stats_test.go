package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v/%v, want 2/4", s.Q1, s.Q3)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary must be zero")
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Stddev != 0 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize must not sort the caller's slice")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Errorf("median of {0,10} = %v, want 5", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Errorf("q1 = %v", q)
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%50) + 1
		samples := make([]float64, k)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 100
		}
		s := Summarize(samples)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := make([]float64, 20)
		for i := range samples {
			samples[i] = rng.Float64() * 1000
		}
		sort.Float64s(samples)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(samples, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummarizeInPlaceMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		samples := make([]float64, rng.Intn(40)+1)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 1000
		}
		want := Summarize(samples)
		got := SummarizeInPlace(samples) // sorts samples, result must agree
		if got != want {
			t.Fatalf("trial %d: SummarizeInPlace = %+v, Summarize = %+v", trial, got, want)
		}
		if !sort.Float64sAreSorted(samples) {
			t.Fatal("SummarizeInPlace must leave the slice sorted")
		}
	}
	if s := SummarizeInPlace(nil); s.N != 0 {
		t.Error("empty in-place summary must be zero")
	}
}
