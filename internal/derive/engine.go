package derive

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/telemetry"
)

// Options wire an engine to its inputs and outputs.
type Options struct {
	// Store is both sides of the loop: rules evaluate against its
	// windows, and their outputs are appended back into it as
	// first-class series (required).
	Store *monitor.Store
	// Clock drives the per-rule evaluation cadence; defaults to the
	// wall clock (fake clocks make evaluation testable).
	Clock monitor.Clock
	// DefaultEvery is the evaluation cadence of rules without their own
	// "every" clause (default 10 s).
	DefaultEvery time.Duration
	// Dispatcher, when set, also receives every emitted sample as a
	// "derive/<rule>" batch, so the agent's sink fan-out (push wires,
	// /metrics snapshots, CSV) carries derived series exactly like
	// collected ones.  The store append does not depend on it.
	Dispatcher *monitor.Dispatcher
	// OnError observes per-rule evaluation problems (optional).
	OnError func(rule string, err error)
	// Telemetry, when set, instruments evaluation: per-eval duration
	// histogram, eval/emit counters, selector fan-out histogram, and a
	// loaded-rules gauge.
	Telemetry *telemetry.Registry
}

// ruleState is one rule's evaluation bookkeeping.
type ruleState struct {
	rule     *Rule
	evals    uint64
	emitted  uint64
	series   int       // selector fan-out of the newest evaluation
	groups   int       // output groups of the newest evaluation
	lastEval time.Time // wall time of the newest evaluation
	lastErr  string

	// res is the cached selector resolution (matched keys, grouped and
	// ordered, with interned output labels), valid while the store's
	// index generation holds still and the rule set is unchanged.
	res *resolution

	// window is the rule's reusable point buffer for WindowInto.  An
	// evaluation takes it (leaving nil) and returns it when done, so
	// concurrent EvalNow+Run evaluations never share a buffer.
	window []monitor.Point
}

// resolution is one rule's selector fan-out at one index generation:
// everything evaluation needs that does not depend on the windows
// themselves.  Immutable once published.
type resolution struct {
	gen     uint64
	matched int      // selector fan-out (series count)
	groups  []*group // emit order (sorted by group identity)
}

// Engine evaluates recorded rules against the store on a per-rule wall
// cadence and appends their outputs back into it.  Reload swaps the
// rule set while Run keeps going — the hot-reload path behind
// likwid-agent's SIGHUP handler and POST /derive/reload.
type Engine struct {
	opts Options

	mu      sync.Mutex
	rules   []*Rule
	state   map[string]*ruleState
	derived map[string]bool // output-name set; replaced wholesale on reload

	reload chan struct{} // signals Run to restart its rule goroutines

	// Telemetry instruments, resolved once at construction (nil without
	// Options.Telemetry; the eval path nil-checks).
	tEvals   *telemetry.Counter
	tEvalSec *telemetry.Histogram
	tEmitted *telemetry.Counter
	tFanout  *telemetry.Histogram
	tResHit  *telemetry.Counter // rule resolutions served from cache
	tResCold *telemetry.Counter // rule resolutions that hit the index
}

// NewEngine creates an engine over the given rules.
func NewEngine(opts Options, rules []*Rule) (*Engine, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("derive: engine needs a store")
	}
	if opts.Clock == nil {
		opts.Clock = monitor.RealClock
	}
	if opts.DefaultEvery <= 0 {
		opts.DefaultEvery = 10 * time.Second
	}
	e := &Engine{
		opts:    opts,
		rules:   rules,
		state:   map[string]*ruleState{},
		derived: derivedSet(rules),
		reload:  make(chan struct{}, 1),
	}
	for _, r := range rules {
		e.state[r.Name] = &ruleState{rule: r}
	}
	if reg := opts.Telemetry; reg != nil {
		e.tEvals = reg.Counter("likwid_derive_evals_total")
		e.tEvalSec = reg.Histogram("likwid_derive_eval_seconds", telemetry.DurationBuckets)
		e.tEmitted = reg.Counter("likwid_derive_emitted_total")
		e.tFanout = reg.Histogram("likwid_derive_selector_series", telemetry.SizeBuckets)
		e.tResHit = reg.Counter("likwid_derive_resolve_total", "result", "hit")
		e.tResCold = reg.Counter("likwid_derive_resolve_total", "result", "cold")
		reg.GaugeFunc("likwid_derive_rules", func() float64 { return float64(len(e.Rules())) })
	}
	return e, nil
}

// derivedSet is the output-name set of a rule list.
func derivedSet(rules []*Rule) map[string]bool {
	out := make(map[string]bool, len(rules))
	for _, r := range rules {
		out[r.Name] = true
	}
	return out
}

// Rules returns a snapshot of the engine's rules in file order.
func (e *Engine) Rules() []*Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Rule(nil), e.rules...)
}

// Reload atomically swaps the rule set.  Validation is the caller's
// job (ParseFile): a file that fails to parse is never handed to
// Reload, so the old set stays live.  Rules whose rendered spec is
// unchanged keep their bookkeeping; a running Run loop restarts its
// goroutines on the new set — unless the whole set renders
// spec-identical, in which case the evaluation timers keep running, so
// a config-management loop re-posting the same file every few seconds
// cannot starve rules of their cadence.  Output series already in the
// store stay: they are first-class data with their own retention, not
// engine state.
func (e *Engine) Reload(rules []*Rule) {
	e.mu.Lock()
	oldSpec := make(map[string]string, len(e.rules))
	for _, r := range e.rules {
		oldSpec[r.Name] = r.String()
	}
	newState := make(map[string]*ruleState, len(rules))
	identical := len(rules) == len(e.rules)
	for i, r := range rules {
		if st, ok := e.state[r.Name]; ok {
			st.rule = r
			newState[r.Name] = st
		} else {
			newState[r.Name] = &ruleState{rule: r}
		}
		identical = identical && e.rules[i].Name == r.Name && oldSpec[r.Name] == r.String()
	}
	if !identical {
		// A changed rule set can change EVERY rule's matched series, not
		// just the edited rules': wildcard selectors exclude the derived
		// output-name set, which this reload just replaced.  Drop all
		// cached resolutions; the next evaluation re-resolves.
		for _, st := range newState {
			st.res = nil
		}
	}
	e.rules = rules
	e.state = newState
	e.derived = derivedSet(rules) // replaced, never mutated: eval reads the old map race-free
	e.mu.Unlock()
	if identical {
		return // same specs, same cadences: keep the running timers
	}
	select {
	case e.reload <- struct{}{}:
	default: // a restart is already pending
	}
}

// Run evaluates every rule on its cadence until the context is
// cancelled, then returns once all rule goroutines have stopped.  A
// Reload restarts the goroutines on the new rule set without dropping
// out of Run.
func (e *Engine) Run(ctx context.Context) {
	for {
		rctx, cancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		for _, r := range e.Rules() {
			wg.Add(1)
			go func(r *Rule) {
				defer wg.Done()
				every := r.Every
				if every <= 0 {
					every = e.opts.DefaultEvery
				}
				for {
					select {
					case <-rctx.Done():
						return
					case <-e.opts.Clock.After(every):
					}
					e.evalRule(r)
				}
			}(r)
		}
		select {
		case <-ctx.Done():
			cancel()
			wg.Wait()
			return
		case <-e.reload:
			cancel()
			wg.Wait()
		}
	}
}

// EvalNow evaluates every rule once, synchronously — the one-shot
// entry for tests and callers that drive their own cadence.
func (e *Engine) EvalNow() {
	for _, r := range e.Rules() {
		e.evalRule(r)
	}
}

// group is one output series' cached membership: the by-dimension
// identity (source, interned output labels) and the member keys.
// Immutable once published in a resolution.
type group struct {
	source string
	labels monitor.Labels
	keys   []monitor.Key
}

// resolve returns the rule's grouped selector resolution, served from
// the per-rule cache while the store's index generation holds still
// (new series are rare after warm-up, so steady-state evaluation does
// zero matching and grouping work), rebuilt through the store's
// selector index when it moves.  It also hands out the rule's reusable
// window buffer; the caller returns it in its bookkeeping pass.
//
// The generation is read BEFORE resolving, so a series created
// mid-resolve is missed only at a generation the cache already
// considers stale — the next evaluation re-resolves.
func (e *Engine) resolve(r *Rule, derived map[string]bool) (*resolution, []monitor.Point) {
	gen := e.opts.Store.IndexGen()
	e.mu.Lock()
	st := e.state[r.Name]
	if st != nil && st.res != nil && st.res.gen == gen {
		res := st.res
		window := st.window
		st.window = nil // this evaluation owns the buffer now
		e.mu.Unlock()
		if e.tResHit != nil {
			e.tResHit.Inc()
		}
		return res, window
	}
	e.mu.Unlock()

	keys := e.opts.Store.Select(monitor.Selector{
		Source:    r.Source,
		AnySource: r.Source == "", // an omitted source sweeps the fleet
		Metric:    r.Metric,
		Labels:    r.Matchers,
		Scope:     r.Scope,
		AnyID:     true,
	})
	// Select covers scope/source/labels/metric; the rule-level
	// exclusions remain: a rule never feeds on its own output, and a
	// wildcard selector skips alert histories and every loaded rule's
	// output so a sweep cannot feed on roll-ups.
	wild := strings.Contains(r.Metric, "*")
	res := &resolution{gen: gen}
	// Group identity is the by-dimension value tuple; a series missing a
	// grouped label lands in the group without it, so partially-labelled
	// fleets still roll up.
	groups := map[string]*group{}
	labelMaps := map[string]map[string]string{}
	var order []string
	for _, k := range keys {
		if k.Metric == r.Name {
			continue
		}
		if wild && (strings.HasPrefix(k.Metric, "alert/") || derived[k.Metric]) {
			continue
		}
		res.matched++
		var sb strings.Builder
		var source string
		var labels map[string]string
		for _, dim := range r.By {
			if dim == BySource {
				source = k.Source
				sb.WriteString("s\x00" + source + "\x00")
				continue
			}
			if v, ok := k.Labels.Get(dim); ok {
				if labels == nil {
					labels = map[string]string{}
				}
				labels[dim] = v
				sb.WriteString("l\x00" + dim + "\x00" + v + "\x00")
			}
		}
		gk := sb.String()
		g := groups[gk]
		if g == nil {
			g = &group{source: source}
			groups[gk] = g
			labelMaps[gk] = labels
			order = append(order, gk)
		}
		g.keys = append(g.keys, k)
	}
	sort.Strings(order) // deterministic emit order for batches and tests
	for _, gk := range order {
		g := groups[gk]
		labels, err := monitor.MakeLabels(labelMaps[gk])
		if err != nil {
			// Unreachable: group labels come off interned series keys,
			// which were validated on the way in.  Fail the group, not the
			// process.
			if e.opts.OnError != nil {
				e.opts.OnError(r.Name, err)
			}
			continue
		}
		g.labels = labels
		res.groups = append(res.groups, g)
	}
	if e.tResCold != nil {
		e.tResCold.Inc()
	}
	e.mu.Lock()
	var window []monitor.Point
	if st := e.state[r.Name]; st != nil {
		st.res = res
		window = st.window
		st.window = nil
	}
	e.mu.Unlock()
	return res, window
}

// invalidateResolutions drops every rule's cached selector resolution,
// forcing the next evaluation to re-resolve through the index — the
// hook the cold-resolve benchmark uses to separate resolution cost from
// windowed reduction.
func (e *Engine) invalidateResolutions() {
	e.mu.Lock()
	for _, st := range e.state {
		st.res = nil
	}
	e.mu.Unlock()
}

// evalRule runs one evaluation of one rule: resolve (cached), reduce,
// emit.  Windows and appends go through the same store paths as every
// other reader and collector, so evaluation never touches the append
// hot path's locks.
func (e *Engine) evalRule(r *Rule) {
	if e.tEvals != nil {
		e.tEvals.Inc()
		start := time.Now()
		defer func() { e.tEvalSec.Observe(time.Since(start).Seconds()) }()
	}
	e.mu.Lock()
	derived := e.derived
	e.mu.Unlock()

	res, window := e.resolve(r, derived)
	if e.tFanout != nil {
		e.tFanout.Observe(float64(res.matched))
	}

	var evalErr error
	var emitted []monitor.Sample
	if res.matched == 0 {
		evalErr = fmt.Errorf("no series matches %s(%s)", r.Fn, r.Metric)
	} else {
		for _, g := range res.groups {
			var s monitor.Sample
			var ok bool
			if s, ok, window = e.evalGroup(r, g, window); ok {
				emitted = append(emitted, s)
			}
		}
	}
	if len(emitted) > 0 {
		if e.tEmitted != nil {
			e.tEmitted.Add(uint64(len(emitted)))
		}
		if e.opts.Dispatcher != nil {
			maxT := emitted[0].Time
			for _, s := range emitted[1:] {
				maxT = math.Max(maxT, s.Time)
			}
			e.opts.Dispatcher.Publish(monitor.Batch{
				Collector: "derive/" + r.Name,
				Time:      maxT,
				Samples:   emitted,
			})
		}
	}

	e.mu.Lock()
	st := e.state[r.Name]
	if st == nil {
		// The rule was reloaded away while this evaluation ran; its
		// bookkeeping is gone and nothing is left to record.
		e.mu.Unlock()
		return
	}
	st.evals++
	st.emitted += uint64(len(emitted))
	st.series = res.matched
	st.groups = len(res.groups)
	st.lastEval = e.opts.Clock.Now()
	st.lastErr = ""
	if evalErr != nil {
		st.lastErr = evalErr.Error()
	}
	if st.window == nil && window != nil {
		st.window = window // return the scratch buffer
	}
	e.mu.Unlock()
	if evalErr != nil && e.opts.OnError != nil {
		e.opts.OnError(r.Name, evalErr)
	}
}

// evalGroup reduces one group's member windows to a single output
// point and appends it to the store, windowing into (and returning)
// the rule's reusable point buffer.  ok is false when no member had
// data in the window or the point would duplicate the output's newest
// (no series advanced since the previous evaluation — the idempotence
// guard, derived from the store rather than engine memory so it
// survives reloads and restarts).
func (e *Engine) evalGroup(r *Rule, g *group, window []monitor.Point) (monitor.Sample, bool, []monitor.Point) {
	var (
		agg    float64
		count  int
		simNow = math.Inf(-1)
	)
	for _, k := range g.keys {
		latest, ok := e.opts.Store.Latest(k)
		if !ok {
			continue
		}
		pts := e.opts.Store.WindowInto(k, latest.Time-r.Over, -1, window)
		if pts != nil {
			window = pts
		}
		v, ok := memberValue(r.Fn, pts)
		if !ok {
			continue
		}
		switch {
		case count == 0:
			agg = v
		case r.Fn == FnMin:
			agg = math.Min(agg, v)
		case r.Fn == FnMax:
			agg = math.Max(agg, v)
		default: // sum, avg, count, rate accumulate
			agg += v
		}
		count++
		if latest.Time > simNow {
			simNow = latest.Time
		}
	}
	if count == 0 {
		return monitor.Sample{}, false, window
	}
	switch r.Fn {
	case FnAvg:
		agg /= float64(count)
	case FnCount:
		agg = float64(count)
	}

	out := monitor.Key{Source: g.source, Metric: r.Name, Scope: monitor.ScopeNode, ID: 0, Labels: g.labels}
	if prev, ok := e.opts.Store.Latest(out); ok && prev.Time >= simNow {
		return monitor.Sample{}, false, window // inputs did not advance: emit nothing
	}
	e.opts.Store.Append(out, monitor.Point{Time: simNow, Value: agg})
	return monitor.Sample{
		Source: out.Source,
		Metric: out.Metric,
		Scope:  out.Scope,
		ID:     out.ID,
		Labels: out.Labels,
		Time:   simNow,
		Value:  agg,
	}, true, window
}

// memberValue reduces one member series' window to its contribution:
// the window mean for sum/avg, the extremum for min/max, presence for
// count, the per-second slope for rate.  ok is false when the window
// cannot support the function (empty, or a rate over a single
// instant).
func memberValue(fn Fn, pts []monitor.Point) (float64, bool) {
	if len(pts) == 0 {
		return 0, false
	}
	switch fn {
	case FnSum, FnAvg:
		sum := 0.0
		for _, p := range pts {
			sum += p.Value
		}
		return sum / float64(len(pts)), true
	case FnMin:
		v := pts[0].Value
		for _, p := range pts[1:] {
			v = math.Min(v, p.Value)
		}
		return v, true
	case FnMax:
		v := pts[0].Value
		for _, p := range pts[1:] {
			v = math.Max(v, p.Value)
		}
		return v, true
	case FnCount:
		return 1, true
	case FnRate:
		first, last := pts[0], pts[len(pts)-1]
		if last.Time <= first.Time {
			return 0, false
		}
		return (last.Value - first.Value) / (last.Time - first.Time), true
	}
	return 0, false
}

// RuleStatus is one rule's bookkeeping in API shape.
type RuleStatus struct {
	Name      string `json:"name"`
	Spec      string `json:"spec"`
	Every     string `json:"every"`
	Evals     uint64 `json:"evals"`
	Emitted   uint64 `json:"emitted"`
	Series    int    `json:"series"`              // selector fan-out of the newest evaluation
	Groups    int    `json:"groups"`              // output groups of the newest evaluation
	LastEval  string `json:"last_eval,omitempty"` // RFC 3339 wall time
	LastError string `json:"last_error,omitempty"`
}

// RuleStatuses snapshots per-rule bookkeeping in file order.
func (e *Engine) RuleStatuses() []RuleStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RuleStatus, 0, len(e.rules))
	for _, r := range e.rules {
		st := e.state[r.Name]
		every := r.Every
		if every <= 0 {
			every = e.opts.DefaultEvery
		}
		rs := RuleStatus{
			Name:      r.Name,
			Spec:      r.String(),
			Every:     every.String(),
			Evals:     st.evals,
			Emitted:   st.emitted,
			Series:    st.series,
			Groups:    st.groups,
			LastError: st.lastErr,
		}
		if !st.lastEval.IsZero() {
			rs.LastEval = st.lastEval.Format(time.RFC3339)
		}
		out = append(out, rs)
	}
	return out
}
