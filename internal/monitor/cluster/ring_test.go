package cluster

import (
	"fmt"
	"testing"

	"likwid/internal/monitor"
)

// fleetKeys builds a realistic key population: many sources (nodes), a
// handful of metrics, several scope IDs — the shape a receiver pool
// actually shards.
func fleetKeys(n int) []monitor.Key {
	keys := make([]monitor.Key, 0, n)
	metrics := []string{"bw", "flops_dp", "cpi", "energy", "l3_miss_ratio"}
	for i := 0; len(keys) < n; i++ {
		keys = append(keys, monitor.Key{
			Source: fmt.Sprintf("node%04d", i/(len(metrics)*4)),
			Metric: metrics[i%len(metrics)],
			Scope:  monitor.ScopeNode,
			ID:     (i / len(metrics)) % 4,
		})
	}
	return keys
}

// TestRingBalance is the satellite property test: 10k keys over 5
// targets must land within ±20% of the fair share each.
func TestRingBalance(t *testing.T) {
	targets := []string{"r0:8090", "r1:8090", "r2:8090", "r3:8090", "r4:8090"}
	ring := NewRing(targets, DefaultVirtualNodes)
	keys := fleetKeys(10000)
	counts := map[string]int{}
	for _, k := range keys {
		owner := ring.LookupKey(k)
		if owner == "" {
			t.Fatalf("key %+v has no owner", k)
		}
		counts[owner]++
	}
	fair := float64(len(keys)) / float64(len(targets))
	for _, name := range targets {
		got := float64(counts[name])
		if got < 0.8*fair || got > 1.2*fair {
			t.Errorf("target %s owns %.0f keys, outside ±20%% of fair share %.0f (full split: %v)",
				name, got, fair, counts)
		}
	}
}

// TestRingMinimalRemapOnLeave pins the consistent-hashing property: when
// one target leaves, exactly the departed target's keys move — every
// other key keeps its owner — so a receiver failure redistributes ~K/N
// keys, not a full reshuffle.
func TestRingMinimalRemapOnLeave(t *testing.T) {
	targets := []string{"r0:8090", "r1:8090", "r2:8090", "r3:8090", "r4:8090"}
	before := NewRing(targets, DefaultVirtualNodes)
	after := NewRing(targets[1:], DefaultVirtualNodes) // r0 leaves
	keys := fleetKeys(10000)
	moved := 0
	for _, k := range keys {
		was, now := before.LookupKey(k), after.LookupKey(k)
		if was != targets[0] {
			if now != was {
				t.Fatalf("key %+v moved %s -> %s although its owner stayed in the pool", k, was, now)
			}
			continue
		}
		moved++
	}
	// The moved set is exactly the departed target's share, which the
	// balance property bounds at ≤ 1.2 * K/N.
	if max := int(1.2 * float64(len(keys)) / float64(len(targets))); moved > max {
		t.Errorf("leave moved %d keys, want <= %d (~K/N)", moved, max)
	}
	if moved == 0 {
		t.Error("leave moved no keys; the departed target owned nothing")
	}
}

// TestRingMinimalRemapOnJoin pins the mirror property: a joining target
// only steals keys for itself — no key moves between two incumbent
// targets — and steals about K/N of them.
func TestRingMinimalRemapOnJoin(t *testing.T) {
	incumbents := []string{"r1:8090", "r2:8090", "r3:8090", "r4:8090"}
	joined := append([]string{"r0:8090"}, incumbents...)
	before := NewRing(incumbents, DefaultVirtualNodes)
	after := NewRing(joined, DefaultVirtualNodes)
	keys := fleetKeys(10000)
	moved := 0
	for _, k := range keys {
		was, now := before.LookupKey(k), after.LookupKey(k)
		if was == now {
			continue
		}
		if now != "r0:8090" {
			t.Fatalf("key %+v moved %s -> %s on join; only the joiner may gain keys", k, was, now)
		}
		moved++
	}
	if max := int(1.2 * float64(len(keys)) / float64(len(joined))); moved > max {
		t.Errorf("join moved %d keys, want <= %d (~K/N)", moved, max)
	}
	if moved == 0 {
		t.Error("join moved no keys; the new target owns nothing")
	}
}

// TestRingOrderIndependent pins that ownership depends on the member
// set, not the listing order: two agents configured with the same pool
// in different orders must agree on every key's owner.
func TestRingOrderIndependent(t *testing.T) {
	a := NewRing([]string{"r0:8090", "r1:8090", "r2:8090"}, DefaultVirtualNodes)
	b := NewRing([]string{"r2:8090", "r0:8090", "r1:8090"}, DefaultVirtualNodes)
	for _, k := range fleetKeys(1000) {
		if ao, bo := a.LookupKey(k), b.LookupKey(k); ao != bo {
			t.Fatalf("key %+v owner disagrees across listing orders: %s vs %s", k, ao, bo)
		}
	}
}

// TestRingEmpty pins the degenerate cases.
func TestRingEmpty(t *testing.T) {
	if owner := NewRing(nil, 0).Lookup(42); owner != "" {
		t.Errorf("empty ring returned owner %q, want \"\"", owner)
	}
	solo := NewRing([]string{"only:1"}, 4)
	for _, k := range fleetKeys(64) {
		if owner := solo.LookupKey(k); owner != "only:1" {
			t.Fatalf("singleton ring returned %q", owner)
		}
	}
}

// TestKeyHashSeparatorsPreventAliasing pins the NUL separators: field
// boundaries must matter, or ("a","bc") and ("ab","c") would shard —
// and dedupe — as one series.
func TestKeyHashSeparatorsPreventAliasing(t *testing.T) {
	a := KeyHash(monitor.Key{Source: "a", Metric: "bc", Scope: monitor.ScopeNode})
	b := KeyHash(monitor.Key{Source: "ab", Metric: "c", Scope: monitor.ScopeNode})
	if a == b {
		t.Error("KeyHash collides across the source/metric boundary")
	}
}
