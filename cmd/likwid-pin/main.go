// likwid-pin runs a built-in workload with enforced thread-core affinity,
// interposing on thread creation exactly as the original tool's preloaded
// pthread_create wrapper does (§II-C, Fig. 3).
//
// Usage:
//
//	likwid-pin -c CPULIST [-t TYPE] [-s SKIPMASK] [-n THREADS] WORKLOAD
//
//	-a arch      node architecture (default westmereEP)
//	-c CPULIST   core list to pin to: physical IDs ("0-3", "0,2,4") or
//	             thread-domain expressions with logical core IDs
//	             ("S0:0-3", "N:0-5", chained as "S0:0-1@S1:0-1")
//	-t TYPE      threading runtime: intel | gnu | pthreads
//	             (intel automatically skips the shepherd thread)
//	-s MASK      explicit hex skip mask, e.g. 0x3 for hybrid MPI+OpenMP
//	-n N         worker threads (default: length of the core list)
//	-v           print each pin decision (the Fig. 3 trace)
//
// WORKLOAD as in likwid-perfctr: triad[:elems], triad-gcc, jacobi:..., sleep:...
package main

import (
	"flag"
	"fmt"
	"os"

	"likwid"
	"likwid/internal/cli"
	"likwid/internal/pin"
	"likwid/internal/sched"
)

func main() {
	arch := flag.String("a", "westmereEP", "node architecture")
	cpuList := flag.String("c", "", "core list to pin to")
	runtimeType := flag.String("t", "gnu", "threading runtime (intel, gnu, pthreads)")
	skipMask := flag.String("s", "", "hex skip mask overriding the runtime default")
	threads := flag.Int("n", 0, "worker threads (default: core list length)")
	verbose := flag.Bool("v", false, "print pin decisions")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "likwid-pin:", err)
		os.Exit(1)
	}
	if *cpuList == "" {
		fail(fmt.Errorf("a core list (-c) is required"))
	}
	if flag.NArg() != 1 {
		fail(fmt.Errorf("need exactly one workload argument"))
	}
	node, err := likwid.Open(*arch)
	if err != nil {
		fail(err)
	}
	work, err := cli.ParseWorkload(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	model, err := sched.ParseRuntime(*runtimeType)
	if err != nil {
		fail(err)
	}
	mask := likwid.SkipMaskFor(model)
	if *skipMask != "" {
		mask, err = pin.ParseSkipMask(*skipMask)
		if err != nil {
			fail(err)
		}
	}
	cores, err := pin.ParseCPUExpression(node.Arch(), *cpuList)
	if err != nil {
		fail(err)
	}
	nThreads := *threads
	if nThreads == 0 {
		nThreads = len(cores)
	}
	pinner, err := pin.New(node.M.OS, cores, mask)
	if err != nil {
		fail(err)
	}
	fmt.Printf("likwid-pin: %s, runtime %s, skip mask %#x, cores %v\n",
		node.String(), model, mask, cores)
	res, err := work.Run(node.M, nThreads, model, pinner)
	if err != nil {
		fail(err)
	}
	if *verbose {
		for _, ev := range pinner.Log() {
			fmt.Println("pthread_create wrapper:", ev)
		}
	}
	if res.Team != nil {
		fmt.Print("placement:")
		for i, w := range res.Team.Workers {
			fmt.Printf(" worker%d->core%d", i, w.CPU)
		}
		fmt.Println()
	}
	fmt.Println(res.Summary)
}
