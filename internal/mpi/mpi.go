// Package mpi models the hybrid MPI+threads launch scenario of §II-C: a
// number of MPI ranks per node, each spawning an OpenMP team, pinned with
// likwid-pin and a skip mask covering the runtime's shepherd threads:
//
//	$ export OMP_NUM_THREADS=8
//	$ mpiexec -n 64 -pernode likwid-pin -c 0-7 -s 0x3 ./a.out
//
// The model stays on one node (the paper's -pernode case runs one rank per
// node); with several ranks per node each rank is offset into the node's
// core list, which is what likwid-mpirun later automated.
package mpi

import (
	"fmt"

	"likwid/internal/machine"
	"likwid/internal/pin"
	"likwid/internal/sched"
)

// Rank is one launched MPI process with its thread team.
type Rank struct {
	ID        int
	Master    *sched.Task
	Team      *sched.Team
	Pinner    *pin.Pinner
	Cores     []int
	Shepherds int // runtime threads excluded from pinning
}

// LaunchSpec describes a hybrid job on one node.
type LaunchSpec struct {
	Ranks          int                // MPI processes on this node
	ThreadsPerRank int                // OMP_NUM_THREADS
	Runtime        sched.RuntimeModel // OpenMP implementation
	// SkipMask per rank; zero means SkipMaskFor(Runtime) plus one MPI
	// shepherd thread (the paper's 0x3 case for Intel MPI + Intel OpenMP).
	SkipMask uint64
	// Cores is the node core list partitioned across ranks; empty means
	// processors 0..Ranks*ThreadsPerRank-1.
	Cores []int
}

// defaultSkipMask composes the MPI shepherd (always thread 0 of a rank)
// with the OpenMP runtime's own shepherd.
func (s LaunchSpec) defaultSkipMask() uint64 {
	mask := uint64(0x1) // the MPI communication thread is created first
	if s.Runtime == sched.RuntimeIntelOMP {
		mask = 0x3 // plus the Intel OpenMP shepherd: the paper's example
	}
	return mask
}

// Launch starts every rank on the machine, pinning each rank's team into
// its slice of the core list.
func Launch(m *machine.Machine, spec LaunchSpec) ([]*Rank, error) {
	if spec.Ranks < 1 || spec.ThreadsPerRank < 1 {
		return nil, fmt.Errorf("mpi: need at least one rank and one thread, got %d/%d",
			spec.Ranks, spec.ThreadsPerRank)
	}
	cores := spec.Cores
	if len(cores) == 0 {
		n := spec.Ranks * spec.ThreadsPerRank
		if n > m.OS.NumCPUs() {
			return nil, fmt.Errorf("mpi: %d ranks x %d threads exceed %d processors",
				spec.Ranks, spec.ThreadsPerRank, m.OS.NumCPUs())
		}
		for c := 0; c < n; c++ {
			cores = append(cores, c)
		}
	}
	if len(cores) < spec.Ranks*spec.ThreadsPerRank {
		return nil, fmt.Errorf("mpi: core list of %d too small for %d x %d",
			len(cores), spec.Ranks, spec.ThreadsPerRank)
	}
	mask := spec.SkipMask
	if mask == 0 {
		mask = spec.defaultSkipMask()
	}

	var ranks []*Rank
	for r := 0; r < spec.Ranks; r++ {
		slice := cores[r*spec.ThreadsPerRank : (r+1)*spec.ThreadsPerRank]
		p, err := pin.New(m.OS, slice, mask)
		if err != nil {
			return nil, fmt.Errorf("mpi: rank %d: %w", r, err)
		}
		master := m.OS.Spawn(fmt.Sprintf("rank-%d", r), nil)
		if err := p.PinProcess(master); err != nil {
			return nil, fmt.Errorf("mpi: rank %d: %w", r, err)
		}
		hook := p.Hook()
		// The MPI library spawns its communication shepherd before any
		// OpenMP thread exists — first created thread of the rank.
		shepherds := 0
		commThread := m.OS.Spawn(fmt.Sprintf("mpi-shepherd-%d", r), master)
		hook(0, commThread)
		shepherds++
		// OpenMP team creation continues the same creation index space.
		offsetHook := func(createIndex int, t *sched.Task) {
			hook(createIndex+1, t)
		}
		team, err := sched.SpawnTeam(m.OS, spec.Runtime, spec.ThreadsPerRank, master, offsetHook)
		if err != nil {
			return nil, fmt.Errorf("mpi: rank %d: %w", r, err)
		}
		if spec.Runtime == sched.RuntimeIntelOMP {
			shepherds++
		}
		ranks = append(ranks, &Rank{
			ID: r, Master: master, Team: team, Pinner: p,
			Cores: slice, Shepherds: shepherds,
		})
	}
	return ranks, nil
}

// Placement returns rank -> worker placements for verification.
func Placement(ranks []*Rank) [][]int {
	out := make([][]int, len(ranks))
	for i, r := range ranks {
		for _, w := range r.Team.Workers {
			out[i] = append(out[i], w.CPU)
		}
	}
	return out
}
