package cli

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Event", "core 0", "core 1")
	tab.AddRow("INSTR_RETIRED_ANY", "313742", "376154")
	tab.AddRow("CPI", "0.69")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("table has %d lines, want 6 (3 rules + header + 2 rows)\n%s", len(lines), out)
	}
	// Every line must be the same width.
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
	if !strings.HasPrefix(lines[0], "+-") || !strings.Contains(lines[1], "| Event") {
		t.Errorf("unexpected layout:\n%s", out)
	}
	// Short row padded.
	if !strings.Contains(lines[4], "| CPI") {
		t.Errorf("missing padded row:\n%s", out)
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[float64]string{
		1:         "1",
		313742:    "313742",
		0:         "0",
		1.88024e7: "1.88024e+07",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatMetric(t *testing.T) {
	if got := FormatMetric(1624.08); got != "1624.08" {
		t.Errorf("FormatMetric = %q", got)
	}
}
