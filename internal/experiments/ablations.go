package experiments

import (
	"fmt"
	"math"
	"strings"

	"likwid/internal/cache"
	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/msr"
	"likwid/internal/perfctr"
	"likwid/internal/stats"
	"likwid/internal/workloads/kernels"
	"likwid/internal/workloads/stream"
)

// Ablation studies for the design choices DESIGN.md calls out.  Each
// returns the data series plus a Render helper.

// MuxErrorPoint is one run length of the multiplex-accuracy ablation.
type MuxErrorPoint struct {
	Elems    float64
	RelError float64 // |estimate - truth| / truth for a rotated event
}

// AblationMultiplex quantifies the paper's warning that "short-running
// measurements will carry large statistical errors" under multiplexing:
// relative extrapolation error of a rotated counter vs run length.
func AblationMultiplex() ([]MuxErrorPoint, error) {
	arch := hwdef.Core2Quad // 2 counters: 4 events force 2 sets
	var out []MuxErrorPoint
	for _, elems := range []float64{5e5, 2e6, 8e6, 3.2e7} {
		m := machine.New(arch, machine.Options{Seed: 17})
		task := m.OS.Spawn("w", nil)
		if err := m.OS.Pin(task, 0); err != nil {
			return nil, err
		}
		specs, err := perfctr.ParseEventList(
			"SIMD_COMP_INST_RETIRED_PACKED_DOUBLE,SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE,L1D_REPL,L2_LINES_IN_ANY")
		if err != nil {
			return nil, err
		}
		col, err := perfctr.NewCollector(m, []int{0}, specs, perfctr.Options{Multiplex: true, MuxInterval: 0.004})
		if err != nil {
			return nil, err
		}
		if err := col.Start(); err != nil {
			return nil, err
		}
		m.RunPhase([]*machine.ThreadWork{{
			Task: task, Elems: elems,
			PerElem: machine.PerElem{
				Cycles: 2,
				Counts: machine.Counts{machine.EvInstr: 3, machine.EvFlopsPackedDP: 1, machine.EvL1LinesIn: 0.125},
				Vector: true,
			},
		}}, 0)
		if err := col.Stop(); err != nil {
			return nil, err
		}
		r := col.Read()
		// The worst event across both multiplex sets: a run shorter than
		// the rotation interval never measures the second set at all.
		packed := r.Counts["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"][0]
		l1 := r.Counts["L1D_REPL"][0]
		errPacked := math.Abs(packed-elems) / elems
		errL1 := math.Abs(l1-elems*0.125) / (elems * 0.125)
		out = append(out, MuxErrorPoint{
			Elems:    elems,
			RelError: math.Max(errPacked, errL1),
		})
	}
	return out, nil
}

// RenderMultiplex prints the multiplex ablation.
func RenderMultiplex(points []MuxErrorPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: multiplex extrapolation error vs measurement length")
	fmt.Fprintf(&b, "%14s %12s\n", "elements", "rel. error")
	for _, p := range points {
		fmt.Fprintf(&b, "%14.0f %11.1f%%\n", p.Elems, p.RelError*100)
	}
	return b.String()
}

// SocketLockResult compares correct (locked) uncore attribution with what a
// naive tool reading the shared bank from every measured core would report.
type SocketLockResult struct {
	TrueLines   float64 // socket traffic counted once
	LockedSum   float64 // sum over report columns with socket lock
	NaiveSum    float64 // sum when every core reads the shared bank
	Overcount   float64 // NaiveSum / TrueLines
	MeasuredCPU int
}

// AblationSocketLock demonstrates why uncore events need socket locks: the
// uncore bank is per-socket shared state, so summing per-core readings
// multiplies the real count by the number of measured cores.
func AblationSocketLock() (*SocketLockResult, error) {
	arch := hwdef.NehalemEP
	m := machine.New(arch, machine.Options{Seed: 23})
	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		return nil, err
	}
	specs, err := perfctr.ParseEventList("UNC_L3_LINES_IN_ANY:UPMC0")
	if err != nil {
		return nil, err
	}
	cpus := []int{0, 1, 2, 3}
	col, err := perfctr.NewCollector(m, cpus, specs, perfctr.Options{})
	if err != nil {
		return nil, err
	}
	if err := col.Start(); err != nil {
		return nil, err
	}
	const elems = 1e7
	m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: elems,
		PerElem: machine.PerElem{Cycles: 1, MemReadBytes: 16, Streams: 3, Vector: true},
	}}, 0)

	// Naive tool: read the (shared) uncore counter through every core's
	// MSR device and add the readings up.
	var naive float64
	for _, cpu := range cpus {
		dev, err := m.MSRs.Open(cpu)
		if err != nil {
			return nil, err
		}
		v, err := dev.Read(msr.UncPMC)
		if err != nil {
			return nil, err
		}
		naive += float64(v)
	}
	if err := col.Stop(); err != nil {
		return nil, err
	}
	r := col.Read()
	var locked float64
	for _, v := range r.Counts["UNC_L3_LINES_IN_ANY"] {
		locked += v
	}
	truth := 16 * elems / 64
	return &SocketLockResult{
		TrueLines: truth,
		LockedSum: locked,
		NaiveSum:  naive,
		Overcount: naive / truth,
	}, nil
}

// RenderSocketLock prints the socket-lock ablation.
func RenderSocketLock(r *SocketLockResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: socket lock for uncore events (UNC_L3_LINES_IN_ANY)")
	fmt.Fprintf(&b, "true socket lines:        %.3e\n", r.TrueLines)
	fmt.Fprintf(&b, "with socket lock (sum):   %.3e\n", r.LockedSum)
	fmt.Fprintf(&b, "naive per-core sum:       %.3e (%.1fx overcount)\n", r.NaiveSum, r.Overcount)
	return b.String()
}

// PrefetchPoint is one prefetcher configuration of the prefetch ablation.
type PrefetchPoint struct {
	Disabled     string // which unit is off ("none" for baseline)
	BandwidthMBs float64
}

// AblationPrefetchers reproduces the likwid-features use case: streaming
// bandwidth with individual prefetch units disabled on a Core 2.
func AblationPrefetchers() ([]PrefetchPoint, error) {
	arch := hwdef.Core2Quad
	k, err := kernels.ByName("load")
	if err != nil {
		return nil, err
	}
	const ws = 16 << 20
	configs := []string{"none", "HW_PREFETCHER", "CL_PREFETCHER", "DCU_PREFETCHER", "all"}
	var out []PrefetchPoint
	for _, disabled := range configs {
		gates := cache.PrefetchGates{}
		for _, p := range arch.Prefetchers {
			name := p.Name
			off := disabled == "all" || name == disabled
			enabled := !off
			gates[name] = func() bool { return enabled }
		}
		pt, err := kernels.Run(arch, k, ws, gates)
		if err != nil {
			return nil, err
		}
		out = append(out, PrefetchPoint{Disabled: disabled, BandwidthMBs: pt.BandwidthMBs})
	}
	return out, nil
}

// RenderPrefetchers prints the prefetcher ablation.
func RenderPrefetchers(points []PrefetchPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: hardware prefetchers vs streaming load bandwidth (Core 2, 16 MiB)")
	fmt.Fprintf(&b, "%16s %14s\n", "disabled unit", "MB/s")
	for _, p := range points {
		fmt.Fprintf(&b, "%16s %14.0f\n", p.Disabled, p.BandwidthMBs)
	}
	return b.String()
}

// PlacementPoint is one scheduler policy of the placement ablation.
type PlacementPoint struct {
	Policy string
	Stats  stats.Summary
}

// AblationPlacement compares the unpinned STREAM bandwidth distribution
// under the two placement policies (the icc-like spread and gcc-like
// compact models).
func AblationPlacement(threads, samples int) ([]PlacementPoint, error) {
	arch := hwdef.WestmereEP
	var out []PlacementPoint
	for _, c := range []stream.Compiler{stream.ICC, stream.GCC} {
		bw, err := stream.RunSamples(stream.Config{
			Arch: arch, Compiler: c, Threads: threads, Mode: stream.Unpinned, Seed: 31,
		}, samples)
		if err != nil {
			return nil, err
		}
		label := "spread (icc runtime)"
		if c == stream.GCC {
			label = "compact (gcc runtime)"
		}
		out = append(out, PlacementPoint{Policy: label, Stats: stats.Summarize(bw)})
	}
	return out, nil
}

// RenderPlacement prints the placement ablation.
func RenderPlacement(points []PlacementPoint, threads int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: unpinned placement policy, STREAM %d threads [MB/s]\n", threads)
	for _, p := range points {
		fmt.Fprintf(&b, "%-24s %s\n", p.Policy, p.Stats.String())
	}
	return b.String()
}

// SMTOrderResult compares pinning orders for a full-socket STREAM run.
type SMTOrderResult struct {
	PhysicalFirstMBs float64 // 0,6,1,7,... physical cores first
	SiblingFirstMBs  float64 // 0,12,1,13,... SMT pairs first
}

// AblationSMTOrder shows why likwid-pin core lists should fill physical
// cores before SMT siblings: packing both hyperthreads of a core before
// using the next core wastes memory pipelines.
func AblationSMTOrder() (*SMTOrderResult, error) {
	arch := hwdef.WestmereEP
	run := func(list []int) (float64, error) {
		bw, err := streamPinnedTo(arch, list)
		if err != nil {
			return 0, err
		}
		return bw, nil
	}
	physFirst := stream.ScatterList(arch)[:12]
	var siblingFirst []int
	for core := 0; core < 6; core++ {
		siblingFirst = append(siblingFirst, core, core+12)
	}
	phys, err := run(physFirst)
	if err != nil {
		return nil, err
	}
	sib, err := run(siblingFirst)
	if err != nil {
		return nil, err
	}
	return &SMTOrderResult{PhysicalFirstMBs: phys, SiblingFirstMBs: sib}, nil
}

// streamPinnedTo runs a 12-thread icc STREAM pinned to an explicit list.
func streamPinnedTo(arch *hwdef.Arch, list []int) (float64, error) {
	m := machine.New(arch, machine.Options{Seed: 37})
	var works []*machine.ThreadWork
	for i := 0; i < len(list); i++ {
		t := m.OS.Spawn("w", nil)
		if err := m.OS.Pin(t, list[i]); err != nil {
			return 0, err
		}
		works = append(works, &machine.ThreadWork{
			Task: t, Elems: 2e7 / float64(len(list)),
			PerElem: machine.PerElem{
				Cycles: 0.95, MemReadBytes: 16, MemWriteBytes: 8, Streams: 3, Vector: true,
			},
		})
	}
	elapsed := m.RunPhase(works, 0)
	return 2e7 * stream.BytesPerElem / elapsed / 1e6, nil
}

// RenderSMTOrder prints the SMT-order ablation.
func RenderSMTOrder(r *SMTOrderResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: 12-thread pin order on Westmere EP [MB/s]")
	fmt.Fprintf(&b, "physical cores first: %14.0f\n", r.PhysicalFirstMBs)
	fmt.Fprintf(&b, "SMT siblings first:   %14.0f\n", r.SiblingFirstMBs)
	return b.String()
}
