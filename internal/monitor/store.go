package monitor

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Point is one (time, value) observation of a series.
type Point struct {
	Time  float64 `json:"time"`
	Value float64 `json:"value"`
}

// series is one metric's fixed-capacity ring buffer plus its downsampled
// retention tiers.  Old points are not discarded when the ring is full:
// they are compacted into the tiers' buckets before being overwritten, so
// long retentions degrade in resolution instead of silently losing
// history.
type series struct {
	mu    sync.RWMutex
	buf   []Point
	head  int // next write position
	n     int // filled entries, <= len(buf)
	tiers []*tierRing
}

func (s *series) append(p Point) {
	s.mu.Lock()
	if s.n == len(s.buf) && len(s.tiers) > 0 {
		// Evictions feed the finest tier only; buckets evicted from tier
		// N's ring cascade into tier N+1 inside seal, so each tier's data
		// flows downward instead of every tier re-reading raw points.
		s.tiers[0].absorb(s.buf[s.head])
	}
	s.buf[s.head] = p
	s.head = (s.head + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// retained copies the raw points and every tier's buckets under one lock,
// so stitched Window queries see a consistent cut of the series.
func (s *series) retained() ([]Point, [][]Bucket) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	raw := make([]Point, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		raw = append(raw, s.buf[(start+i)%len(s.buf)])
	}
	var tiers [][]Bucket
	for _, t := range s.tiers {
		tiers = append(tiers, t.snapshot())
	}
	return raw, tiers
}

func (s *series) latest() (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.n == 0 {
		return Point{}, false
	}
	idx := s.head - 1
	if idx < 0 {
		idx += len(s.buf)
	}
	return s.buf[idx], true
}

func (s *series) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// storeShards is the lock-striping width of the store: writers of
// different series contend only within their shard, so concurrent
// collectors rarely serialize on each other.
const storeShards = 16

type storeShard struct {
	mu     sync.RWMutex
	series map[Key]*series
}

// Store is the agent's in-memory time-series database: one bounded ring
// buffer per (metric, scope, id) series behind RWMutex-sharded maps, with
// optional downsampled retention tiers fed by ring evictions.
type Store struct {
	capacity int
	tiers    []Tier
	shards   [storeShards]storeShard
}

// NewStore creates a store retaining up to capacity raw points per series
// (default 1024 when capacity <= 0).  Optional tiers add downsampled
// retention: raw points evicted from the ring are compacted into
// min/median/max/avg buckets of the finest tier, and buckets evicted
// from each tier's ring cascade into the next-coarser tier.
func NewStore(capacity int, tiers ...Tier) *Store {
	if capacity <= 0 {
		capacity = 1024
	}
	st := &Store{capacity: capacity, tiers: append([]Tier(nil), tiers...)}
	for i := range st.shards {
		st.shards[i].series = map[Key]*series{}
	}
	return st
}

func (st *Store) shardOf(k Key) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(k.Metric))
	h.Write([]byte{byte(k.Scope), byte(k.ID), byte(k.ID >> 8)})
	return &st.shards[h.Sum32()%storeShards]
}

func (st *Store) getOrCreate(k Key) *series {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	sh.mu.RUnlock()
	if s != nil {
		return s
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s = sh.series[k]; s == nil {
		s = &series{buf: make([]Point, st.capacity)}
		for _, t := range st.tiers {
			s.tiers = append(s.tiers, newTierRing(t))
		}
		// Chain the cascade: tier N's ring evictions compact into tier N+1.
		for i := 0; i+1 < len(s.tiers); i++ {
			s.tiers[i].next = s.tiers[i+1]
		}
		sh.series[k] = s
	}
	return s
}

// Append records one observation.
func (st *Store) Append(k Key, p Point) { st.getOrCreate(k).append(p) }

// AppendBatch records every sample of a batch.
func (st *Store) AppendBatch(b Batch) {
	for _, s := range b.Samples {
		st.Append(s.Key(), Point{Time: s.Time, Value: s.Value})
	}
}

// Window returns the retained points of one series with from <= Time <= to,
// oldest first.  A negative "to" means "until the newest point".  Ranges
// older than the raw ring are served from the downsampled tiers, finest
// resolution first: each bucket becomes one point (bucket start, average),
// clipped so the stitched result is non-overlapping and time-ordered.
func (st *Store) Window(k Key, from, to float64) []Point {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	sh.mu.RUnlock()
	if s == nil {
		return nil
	}
	raw, tiers := s.retained()
	// Appends are normally time-ordered, but ingested batches may not be
	// (an agent restart resets its clock): sort defensively so the
	// oldest-first contract — and stitch's coverage boundary — hold.
	if !sort.SliceIsSorted(raw, func(i, j int) bool { return raw[i].Time < raw[j].Time }) {
		sort.SliceStable(raw, func(i, j int) bool { return raw[i].Time < raw[j].Time })
	}
	if len(tiers) == 0 {
		out := raw[:0:0]
		for _, p := range raw {
			if p.Time < from || (to >= 0 && p.Time > to) {
				continue
			}
			out = append(out, p)
		}
		return out
	}
	return stitch(raw, tiers, from, to)
}

// Latest returns the newest point of a series.
func (st *Store) Latest(k Key) (Point, bool) {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	sh.mu.RUnlock()
	if s == nil {
		return Point{}, false
	}
	return s.latest()
}

// Len reports the retained point count of a series.
func (st *Store) Len(k Key) int {
	sh := st.shardOf(k)
	sh.mu.RLock()
	s := sh.series[k]
	sh.mu.RUnlock()
	if s == nil {
		return 0
	}
	return s.len()
}

// ForEachKey calls f for every series key in unspecified order — the
// allocation-light path for filters (the alert engine's selectors run
// once per rule per evaluation tick) that do not need Keys' sorted
// copy.  f runs under a shard read lock and must not call back into the
// store.
func (st *Store) ForEachKey(f func(Key)) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for k := range sh.series {
			f(k)
		}
		sh.mu.RUnlock()
	}
}

// Keys lists every series, sorted by metric, scope, id for stable output.
func (st *Store) Keys() []Key {
	var out []Key
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for k := range sh.series {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].ID < out[j].ID
	})
	return out
}
