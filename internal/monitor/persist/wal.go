// Package persist gives the monitor store crash durability: a
// write-ahead log of appends plus periodic full-state snapshots, so an
// agent or receiver restarted after a crash restores its raw rings and
// retention tiers instead of starting cold.
//
// The division of labor follows the store's own hot/cold split.  The
// append path stays allocation-free: the store's Journal hook hands
// plain (Key, Point) values to a buffered channel and never blocks —
// when the channel is full the record is dropped and counted, trading
// bounded durability loss for an unbounded-latency-free ingest path.  A
// single writer goroutine drains the channel, frames records with a
// CRC, and fsyncs on idle: under a steady append stream each drain
// batch becomes one group commit, so the fsync cost amortizes over the
// batch instead of taxing every point.
package persist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/telemetry"
)

// walEntry is the wire form of one journaled append.  Labels travel as
// a plain map (the intern table is process state, not disk state).
type walEntry struct {
	Source string            `json:"source,omitempty"`
	Metric string            `json:"metric"`
	Scope  string            `json:"scope"`
	ID     int               `json:"id"`
	Labels map[string]string `json:"labels,omitempty"`
	Time   float64           `json:"time"`
	Value  float64           `json:"value"`
}

// walRec is the in-flight record: plain values, so handing one to the
// channel never allocates on the append path.
type walRec struct {
	k monitor.Key
	p monitor.Point
}

// walMaxRecord bounds a single framed record; anything larger in a
// replayed file is framing corruption, not data.
const walMaxRecord = 1 << 20

// wal owns the log file and the writer goroutine.  Record (the
// monitor.Journal implementation) is safe for concurrent use; all file
// access happens on the writer goroutine or under mu (rotation).
type wal struct {
	ch   chan walRec
	done chan struct{}
	wg   sync.WaitGroup

	mu sync.Mutex // guards f/w swap during rotation
	f  *os.File
	w  *bufio.Writer

	records atomic.Uint64
	dropped atomic.Uint64
	fsyncs  atomic.Uint64

	// observeFsync, when set, receives each fsync's duration in seconds.
	observeFsync func(float64)
	// fail reports asynchronous write errors (disk full, file gone).
	fail func(err error)
}

func openWAL(path string, buffer int) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &wal{
		ch:   make(chan walRec, buffer),
		done: make(chan struct{}),
		f:    f,
		w:    bufio.NewWriter(f),
	}
	w.wg.Add(1)
	go w.run()
	return w, nil
}

// Record implements monitor.Journal: non-blocking handoff, drops (and
// counts) when the writer cannot keep up.
func (w *wal) Record(k monitor.Key, p monitor.Point) {
	select {
	case w.ch <- walRec{k, p}:
	default:
		w.dropped.Add(1)
	}
}

// run drains the channel: each wakeup writes every queued record, then
// flushes and fsyncs once — group commit on idle.
func (w *wal) run() {
	defer w.wg.Done()
	for {
		select {
		case r := <-w.ch:
			w.commit(r)
		case <-w.done:
			// Drain what raced the shutdown, then stop.
			for {
				select {
				case r := <-w.ch:
					w.commit(r)
				default:
					return
				}
			}
		}
	}
}

// commit writes r plus everything else queued, then syncs.
func (w *wal) commit(r walRec) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.write(r)
	for {
		select {
		case r = <-w.ch:
			w.write(r)
		default:
			w.sync()
			return
		}
	}
}

func (w *wal) write(r walRec) {
	e := walEntry{
		Source: r.k.Source,
		Metric: r.k.Metric,
		Scope:  r.k.Scope.String(),
		ID:     r.k.ID,
		Labels: r.k.Labels.Map(),
		Time:   r.p.Time,
		Value:  r.p.Value,
	}
	payload, err := json.Marshal(e)
	if err != nil {
		w.report(err)
		return
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.report(err)
		return
	}
	if _, err := w.w.Write(payload); err != nil {
		w.report(err)
		return
	}
	w.records.Add(1)
}

func (w *wal) sync() {
	if err := w.w.Flush(); err != nil {
		w.report(err)
		return
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		w.report(err)
		return
	}
	w.fsyncs.Add(1)
	if w.observeFsync != nil {
		w.observeFsync(time.Since(start).Seconds())
	}
}

func (w *wal) report(err error) {
	if w.fail != nil {
		w.fail(err)
	}
}

// rotate flushes and closes the current log and swaps in a fresh file
// at newPath, renaming the old one to prevPath.  Called with appends
// still flowing: the writer blocks on mu for the swap's duration only.
func (w *wal) rotate(prevPath, newPath string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(w.f.Name(), prevPath); err != nil {
		return err
	}
	f, err := os.OpenFile(newPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.w.Reset(f)
	return nil
}

// stop halts the writer goroutine after it drains and commits every
// queued record.  The file stays open: a final rotation may follow.
func (w *wal) stop() {
	close(w.done)
	w.wg.Wait()
}

// closeFile flushes and closes the log file; call after stop.
func (w *wal) closeFile() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayWAL streams a log file's records into apply, in order.  A
// partial or corrupt tail — the expected shape of a crash mid-write —
// truncates the file at the last whole record and reports the dropped
// byte count; corruption is a recovery event, not an error.  A missing
// file replays nothing.
func replayWAL(path string, apply func(walEntry) error) (applied int, truncated int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var off, good int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break // EOF or a torn header: truncate here
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size > walMaxRecord {
			break
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var e walEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			break
		}
		off += 8 + int64(size)
		good = off
		if err := apply(e); err != nil {
			return applied, 0, err
		}
		applied++
	}
	st, err := f.Stat()
	if err != nil {
		return applied, 0, err
	}
	if tail := st.Size() - good; tail > 0 {
		if err := os.Truncate(path, good); err != nil {
			return applied, tail, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
		}
		return applied, tail, nil
	}
	return applied, 0, nil
}

// entryKey rebuilds the store key of a replayed record.
func entryKey(e walEntry) (monitor.Key, error) {
	scope, err := monitor.ParseScope(e.Scope)
	if err != nil {
		return monitor.Key{}, err
	}
	labels, err := monitor.MakeLabels(e.Labels)
	if err != nil {
		return monitor.Key{}, err
	}
	return monitor.Key{Source: e.Source, Metric: e.Metric, Scope: scope, ID: e.ID, Labels: labels}, nil
}

// instrument registers the WAL's self-metrics.
func (w *wal) instrument(reg *telemetry.Registry) {
	reg.CounterFunc("likwid_wal_records_total", func() float64 {
		return float64(w.records.Load())
	})
	reg.CounterFunc("likwid_wal_dropped_total", func() float64 {
		return float64(w.dropped.Load())
	})
	reg.CounterFunc("likwid_wal_fsyncs_total", func() float64 {
		return float64(w.fsyncs.Load())
	})
}
