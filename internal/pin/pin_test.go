package pin

import (
	"testing"
	"testing/quick"

	"likwid/internal/hwdef"
	"likwid/internal/sched"
)

func TestParseCPUList(t *testing.T) {
	cases := map[string][]int{
		"0-3":      {0, 1, 2, 3},
		"0,2,4":    {0, 2, 4},
		"0-1,8-10": {0, 1, 8, 9, 10},
		"7":        {7},
		" 0 , 2 ":  {0, 2},
	}
	for in, want := range cases {
		got, err := ParseCPUList(in)
		if err != nil {
			t.Errorf("ParseCPUList(%q): %v", in, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("ParseCPUList(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("ParseCPUList(%q) = %v, want %v", in, got, want)
				break
			}
		}
	}
	for _, bad := range []string{"", "3-1", "-1", "a", "0,,1", "0,0", "1-2-3"} {
		if _, err := ParseCPUList(bad); err == nil {
			t.Errorf("ParseCPUList(%q) must fail", bad)
		}
	}
}

func TestParseCPUListRangeRoundtripProperty(t *testing.T) {
	f := func(a, n uint8) bool {
		lo := int(a % 32)
		hi := lo + int(n%16)
		s := ""
		if lo == hi {
			s = formatInt(lo)
		} else {
			s = formatInt(lo) + "-" + formatInt(hi)
		}
		got, err := ParseCPUList(s)
		if err != nil || len(got) != hi-lo+1 {
			return false
		}
		for i, c := range got {
			if c != lo+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func formatInt(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestParseSkipMask(t *testing.T) {
	for in, want := range map[string]uint64{"0x1": 1, "0x3": 3, "3": 3, "0xF0": 240} {
		got, err := ParseSkipMask(in)
		if err != nil || got != want {
			t.Errorf("ParseSkipMask(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "0x", "zz"} {
		if _, err := ParseSkipMask(bad); err == nil {
			t.Errorf("ParseSkipMask(%q) must fail", bad)
		}
	}
}

func TestSkipMaskFor(t *testing.T) {
	if SkipMaskFor(sched.RuntimeIntelOMP) != 0x1 {
		t.Error("Intel OpenMP needs skip mask 0x1 (shepherd)")
	}
	if SkipMaskFor(sched.RuntimeGccOMP) != 0 || SkipMaskFor(sched.RuntimePthreads) != 0 {
		t.Error("gcc / pthreads need no skip mask")
	}
}

// pinTeam runs the full likwid-pin flow for a runtime model and returns the
// team and pinner.
func pinTeam(t *testing.T, model sched.RuntimeModel, nThreads int, cores []int, skip uint64) (*sched.Kernel, *sched.Team, *Pinner) {
	t.Helper()
	k := sched.New(hwdef.WestmereEP, sched.PolicySpread, 21)
	p, err := New(k, cores, skip)
	if err != nil {
		t.Fatal(err)
	}
	master := k.Spawn("a.out", nil)
	if err := p.PinProcess(master); err != nil {
		t.Fatal(err)
	}
	team, err := sched.SpawnTeam(k, model, nThreads, master, p.Hook())
	if err != nil {
		t.Fatal(err)
	}
	return k, team, p
}

func TestIntelOpenMPPinning(t *testing.T) {
	// likwid-pin -c 0-3 -t intel with OMP_NUM_THREADS=4: master on 0,
	// shepherd skipped, workers on 1, 2, 3.
	_, team, p := pinTeam(t, sched.RuntimeIntelOMP, 4, []int{0, 1, 2, 3}, SkipMaskFor(sched.RuntimeIntelOMP))
	wantCPU := []int{0, 1, 2, 3}
	for i, w := range team.Workers {
		if w.CPU != wantCPU[i] {
			t.Errorf("worker %d on cpu %d, want %d", i, w.CPU, wantCPU[i])
		}
		if !w.Pinned {
			t.Errorf("worker %d not pinned", i)
		}
	}
	// The shepherd must be unpinned.
	for _, c := range team.Created {
		if c.Name == "omp-shepherd" && c.Pinned {
			t.Error("shepherd was pinned despite the skip mask")
		}
	}
	log := p.Log()
	if !log[0].Skipped {
		t.Error("first created thread must be logged as skipped")
	}
}

func TestIntelWithoutSkipMaskShiftsWorkers(t *testing.T) {
	// The failure mode the skip mask exists to prevent: without it the
	// shepherd consumes core 0's successor and workers land shifted.
	_, team, _ := pinTeam(t, sched.RuntimeIntelOMP, 4, []int{0, 1, 2, 3}, 0)
	// master -> 0, shepherd -> 1, workers -> 2, 3, then list exhausted.
	if team.Workers[1].CPU != 2 {
		t.Errorf("worker 1 on cpu %d, want 2 (shifted by the unskipped shepherd)", team.Workers[1].CPU)
	}
	last := team.Workers[3]
	if last.Pinned {
		t.Error("last worker should have overflowed the core list and stayed unpinned")
	}
}

func TestGccPinning(t *testing.T) {
	_, team, _ := pinTeam(t, sched.RuntimeGccOMP, 4, []int{0, 1, 2, 3}, 0)
	for i, w := range team.Workers {
		if w.CPU != i {
			t.Errorf("gcc worker %d on cpu %d, want %d", i, w.CPU, i)
		}
	}
}

func TestHybridMPISkipMask(t *testing.T) {
	// likwid-pin -c 0-7 -s 0x3: first two created threads (MPI shepherd +
	// OpenMP shepherd) are skipped.
	k := sched.New(hwdef.WestmereEP, sched.PolicySpread, 5)
	p, err := New(k, []int{0, 1, 2, 3, 4, 5, 6, 7}, 0x3)
	if err != nil {
		t.Fatal(err)
	}
	master := k.Spawn("mpi-rank", nil)
	if err := p.PinProcess(master); err != nil {
		t.Fatal(err)
	}
	hook := p.Hook()
	// Simulate the creation sequence: two shepherds, then six workers.
	var created []*sched.Task
	for i := 0; i < 8; i++ {
		tk := k.Spawn("t", master)
		hook(i, tk)
		created = append(created, tk)
	}
	if created[0].Pinned || created[1].Pinned {
		t.Error("threads 0 and 1 must be skipped by mask 0x3")
	}
	for i := 2; i < 8; i++ {
		want := i - 1 // core list position: master took 0
		if created[i].CPU != want {
			t.Errorf("thread %d on cpu %d, want %d", i, created[i].CPU, want)
		}
	}
}

func TestPinnerSetsKMPAffinityDisabled(t *testing.T) {
	k := sched.New(hwdef.WestmereEP, sched.PolicySpread, 5)
	p, err := New(k, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Env["KMP_AFFINITY"] != "disabled" {
		t.Error("likwid-pin must export KMP_AFFINITY=disabled")
	}
}

func TestPinnerValidation(t *testing.T) {
	k := sched.New(hwdef.WestmereEP, sched.PolicySpread, 5)
	if _, err := New(k, nil, 0); err == nil {
		t.Error("empty core list must fail")
	}
	if _, err := New(k, []int{99}, 0); err == nil {
		t.Error("nonexistent core must fail")
	}
	p, _ := New(k, []int{0, 1}, 0)
	master := k.Spawn("m", nil)
	hook := p.Hook()
	hook(0, k.Spawn("t", master))
	if err := p.PinProcess(master); err == nil {
		t.Error("PinProcess after thread pinning must fail")
	}
}

func TestRemaining(t *testing.T) {
	k := sched.New(hwdef.WestmereEP, sched.PolicySpread, 5)
	p, _ := New(k, []int{0, 1, 2}, 0)
	master := k.Spawn("m", nil)
	p.PinProcess(master)
	if p.Remaining() != 2 {
		t.Errorf("remaining = %d, want 2", p.Remaining())
	}
}
