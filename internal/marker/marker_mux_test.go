package marker

import (
	"math"
	"testing"

	"likwid/internal/machine"
	"likwid/internal/perfctr"
	"likwid/internal/sched"
)

// TestMarkerUnderMultiplexing: regions measured while event sets rotate
// still attribute counts to the right region, with extrapolation error
// bounded for regions spanning many rotation intervals.
func TestMarkerUnderMultiplexing(t *testing.T) {
	m, err := machine.NewNamed("core2", machine.Options{Policy: sched.PolicySpread, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := perfctr.ParseEventList(
		"SIMD_COMP_INST_RETIRED_PACKED_DOUBLE,SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE,L1D_REPL,L2_LINES_IN_ANY")
	if err != nil {
		t.Fatal(err)
	}
	col, err := perfctr.NewCollector(m, []int{0}, specs, perfctr.Options{Multiplex: true, MuxInterval: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if col.NumSets() != 2 {
		t.Fatalf("sets = %d, want 2", col.NumSets())
	}
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	mk, err := New(col, m.Arch.ClockHz(), 1)
	if err != nil {
		t.Fatal(err)
	}
	id := mk.RegisterRegion("Long")

	task := m.OS.Spawn("w", nil)
	if err := m.OS.Pin(task, 0); err != nil {
		t.Fatal(err)
	}
	if err := mk.StartRegion(0, 0); err != nil {
		t.Fatal(err)
	}
	const elems = 4e7 // spans many 2 ms rotation windows
	m.RunPhase([]*machine.ThreadWork{{
		Task: task, Elems: elems,
		PerElem: machine.PerElem{
			Cycles: 2,
			Counts: machine.Counts{
				machine.EvInstr:         3,
				machine.EvFlopsPackedDP: 1,
				machine.EvL1LinesIn:     0.125,
			},
			Vector: true,
		},
	}}, 0)
	if err := mk.StopRegion(0, 0, id); err != nil {
		t.Fatal(err)
	}
	if err := col.Stop(); err != nil {
		t.Fatal(err)
	}
	region := mk.Regions()[id]
	packed := region.Counts["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE"][0]
	if math.Abs(packed-elems) > elems*0.15 {
		t.Errorf("region packed count = %v, want %v ± 15%% (multiplex extrapolation)", packed, elems)
	}
	l1 := region.Counts["L1D_REPL"][0]
	if math.Abs(l1-elems*0.125) > elems*0.125*0.15 {
		t.Errorf("region L1D_REPL = %v, want %v ± 15%%", l1, elems*0.125)
	}
	// The fixed events stay exact even under rotation.
	instr := region.Counts["INSTR_RETIRED_ANY"][0]
	if math.Abs(instr-3*elems) > 1 {
		t.Errorf("region instructions = %v, want exactly %v", instr, 3*elems)
	}
}
