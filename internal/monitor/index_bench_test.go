package monitor

import (
	"fmt"
	"testing"
)

// populateLabeledStore bulk-loads n series shaped like a labelled
// fleet: n/100 metrics × 25 sources × 4 ids, each carrying a job label
// from an 8-value pool.
func populateLabeledStore(tb testing.TB, n int) *Store {
	tb.Helper()
	st := NewStore(8)
	metrics := n / 100
	if metrics < 1 {
		metrics = 1
	}
	var b Batch
	i := 0
	for m := 0; m < metrics; m++ {
		for s := 0; s < 25; s++ {
			for id := 0; id < 4; id++ {
				labels := mustLabelMap(tb, map[string]string{"job": fmt.Sprintf("job%d", i%8)})
				b.Samples = append(b.Samples, Sample{
					Source: fmt.Sprintf("node%02d", s),
					Metric: fmt.Sprintf("metric_%03d", m),
					Scope:  ScopeCore, ID: id, Labels: labels,
					Time: 1, Value: 1,
				})
				i++
			}
		}
	}
	st.AppendBatch(b)
	return st
}

var sinkKeys []Key // defeats dead-code elimination in the Select benchmarks

// BenchmarkSelectExact resolves one exact (source, metric, scope, id)
// selector — the /query single-series shape — at fleet sizes.
func BenchmarkSelectExact(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("series=%d", n), func(b *testing.B) {
			st := populateLargeStore(b, n)
			sel := Selector{Source: "node07", Metric: "metric_00" + "2", Scope: ScopeCore, ID: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkKeys = st.Select(sel)
			}
		})
	}
}

// BenchmarkSelectWildcard resolves a wildcard metric under an exact
// source — postings narrow by source, the wildcard post-filters.
func BenchmarkSelectWildcard(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("series=%d", n), func(b *testing.B) {
			st := populateLargeStore(b, n)
			sel := Selector{Source: "node07", Metric: "metric_*", QueryForm: true, Scope: ScopeCore, AnyID: true}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkKeys = st.Select(sel)
			}
		})
	}
}

// BenchmarkSelectLabels resolves a fleet-wide label slice — the
// by-label postings intersection under a wildcard source.
func BenchmarkSelectLabels(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("series=%d", n), func(b *testing.B) {
			st := populateLabeledStore(b, n)
			sel := Selector{
				Source: "*", Metric: "metric_000", QueryForm: true,
				Labels: []Label{{Name: "job", Value: "job3"}},
				Scope:  ScopeCore, AnyID: true,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkKeys = st.Select(sel)
			}
		})
	}
}
