// Package spec is the shared scanner of the suite's one-line rule
// languages.  The alert DSL (internal/alert) and the derived-series DSL
// (internal/derive) read the same lexical shapes — bare words, quoted
// metrics, [SOURCE/]METRIC{label="value"} selectors, durations — so the
// tokenizer, the selector reader and the quoting rules live here once:
// one parser family, two grammars on top of it.
//
// Errors carry 1-based line:column positions prefixed with the owning
// language's name ("alert: line 3:17: ..."), so a typo in a 50-rule
// file is findable regardless of which DSL it sits in.
package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"likwid/internal/monitor"
)

// WordBreak are the delimiter characters that terminate a bare word.
// '{' and '}' delimit the label matcher block of a selector, so a bare
// metric stops at the block (quote a metric that really contains them).
const WordBreak = " \t:,()<>=\"{}"

// Scanner is the hand-rolled single-line tokenizer shared by the rule
// languages; errors report 1-based line:column positions under the
// language name handed to New.
type Scanner struct {
	lang string
	src  string
	pos  int
	line int
}

// New creates a scanner over one line of a lang-language file; lineNo is
// the 1-based line for error positions.
func New(lang, src string, lineNo int) *Scanner {
	return &Scanner{lang: lang, src: src, line: lineNo}
}

// Errf builds a positioned parse error at the 1-based column col.
func (s *Scanner) Errf(col int, format string, args ...any) error {
	return fmt.Errorf("%s: line %d:%d: %s", s.lang, s.line, col, fmt.Sprintf(format, args...))
}

// SkipSpace consumes spaces and tabs.
func (s *Scanner) SkipSpace() {
	for s.pos < len(s.src) && (s.src[s.pos] == ' ' || s.src[s.pos] == '\t') {
		s.pos++
	}
}

// Col is the 1-based column of the current position.
func (s *Scanner) Col() int { return s.pos + 1 }

// EOF reports whether only trailing space remains.
func (s *Scanner) EOF() bool {
	s.SkipSpace()
	return s.pos >= len(s.src)
}

// Rest returns the unconsumed tail (trailing-error rendering).
func (s *Scanner) Rest() string { return s.src[s.pos:] }

// Peek returns the next byte without consuming it; 0 at end of line.
func (s *Scanner) Peek() byte {
	s.SkipSpace()
	if s.pos >= len(s.src) {
		return 0
	}
	return s.src[s.pos]
}

// Word reads a maximal run of non-delimiter characters.
func (s *Scanner) Word() (string, int) {
	s.SkipSpace()
	start := s.pos
	for s.pos < len(s.src) && !strings.ContainsRune(WordBreak, rune(s.src[s.pos])) {
		s.pos++
	}
	return s.src[start:s.pos], start + 1
}

// selectorWord reads a maximal run of non-delimiter characters, also
// stopping at '/' — the source/metric separator of a selector.
func (s *Scanner) selectorWord() (string, int) {
	s.SkipSpace()
	start := s.pos
	for s.pos < len(s.src) && s.src[s.pos] != '/' &&
		!strings.ContainsRune(WordBreak, rune(s.src[s.pos])) {
		s.pos++
	}
	return s.src[start:s.pos], start + 1
}

// Selector reads the [SOURCE/]METRIC selector of a rule expression into
// its two dimensions.  Either part may be quoted; an unquoted leading
// segment that is one of the suite's reserved metric namespaces
// (event/, topo/, feature/, membw/, alert/) belongs to the metric, not
// a source — quoting the segment ("event"/x) forces the source reading.
func (s *Scanner) Selector() (source, metric string, col int, err error) {
	s.SkipSpace()
	quoted := false
	var part string
	if s.pos < len(s.src) && s.src[s.pos] == '"' {
		if part, col, err = s.Quoted(); err != nil {
			return "", "", col, err
		}
		quoted = true
	} else {
		part, col = s.selectorWord()
	}
	if s.pos < len(s.src) && s.src[s.pos] == '/' {
		if quoted || !monitor.ReservedNamespace(part) {
			s.pos++ // consume the separator
			if s.pos < len(s.src) && s.src[s.pos] == '"' {
				if metric, _, err = s.Quoted(); err != nil {
					return "", "", col, err
				}
			} else {
				metric, _ = s.Word() // '/' inside the metric tail stays
			}
			return part, metric, col, nil
		}
		// Reserved namespace: the '/' is part of the metric name.
		rest, _ := s.Word()
		part += rest
	}
	return "", part, col, nil
}

// Matchers reads the optional {name="value",...} label matcher block
// that may suffix a selector's metric.  Names are bare label names,
// values are quoted and may use '*' wildcards; duplicate names and an
// empty block are errors.  Matchers are returned sorted by name, so a
// rendered rule is canonical.
func (s *Scanner) Matchers() ([]monitor.Label, error) {
	s.SkipSpace()
	if s.pos >= len(s.src) || s.src[s.pos] != '{' {
		return nil, nil
	}
	s.pos++
	var out []monitor.Label
	seen := map[string]bool{}
	for {
		name, col := s.Word()
		if name == "" {
			return nil, s.Errf(col, "expected a label name in the matcher block")
		}
		if !monitor.ValidLabelName(name) {
			return nil, s.Errf(col, "bad matcher label name %q (letters, digits, '_'; not starting with a digit)", name)
		}
		if monitor.ReservedLabelName(name) {
			return nil, s.Errf(col, "label name %q is reserved; match it with the selector's own dimensions instead", name)
		}
		if seen[name] {
			return nil, s.Errf(col, "duplicate matcher label %q", name)
		}
		seen[name] = true
		if err := s.Expect('=', "after the matcher label name"); err != nil {
			return nil, err
		}
		value, vcol, err := s.Quoted()
		if err != nil {
			return nil, err
		}
		if value == "" {
			return nil, s.Errf(vcol, "empty matcher value for label %q", name)
		}
		out = append(out, monitor.Label{Name: name, Value: value})
		s.SkipSpace()
		if s.pos < len(s.src) && s.src[s.pos] == ',' {
			s.pos++
			continue
		}
		break
	}
	if err := s.Expect('}', "after the label matchers"); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Quoted reads a double-quoted string.  The language has no escape
// sequences (metric names contain no quotes), so any content that Go's
// %q would escape — backslashes, control bytes, invalid UTF-8 — could
// never render back canonically and is rejected.
func (s *Scanner) Quoted() (string, int, error) {
	s.SkipSpace()
	start := s.pos
	if s.pos >= len(s.src) || s.src[s.pos] != '"' {
		return "", start + 1, s.Errf(start+1, "expected quoted string")
	}
	s.pos++
	end := strings.IndexByte(s.src[s.pos:], '"')
	if end < 0 {
		return "", start + 1, s.Errf(start+1, "unterminated quoted metric")
	}
	out := s.src[s.pos : s.pos+end]
	s.pos += end + 1
	if strconv.Quote(out) != `"`+out+`"` {
		return "", start + 1, s.Errf(start+1, "quoted name contains unprintable or escape characters")
	}
	return out, start + 1, nil
}

// Expect consumes one required delimiter byte.
func (s *Scanner) Expect(ch byte, what string) error {
	s.SkipSpace()
	if s.pos >= len(s.src) || s.src[s.pos] != ch {
		return s.Errf(s.Col(), "expected %q %s", string(ch), what)
	}
	s.pos++
	return nil
}

// Accept consumes ch if it is next and reports whether it did.
func (s *Scanner) Accept(ch byte) bool {
	s.SkipSpace()
	if s.pos < len(s.src) && s.src[s.pos] == ch {
		s.pos++
		return true
	}
	return false
}

// AcceptRaw consumes ch only if it is the immediate next byte — no
// space skipping, for two-character operators like "<=".
func (s *Scanner) AcceptRaw(ch byte) bool {
	if s.pos < len(s.src) && s.src[s.pos] == ch {
		s.pos++
		return true
	}
	return false
}

// Duration parses a positive Go duration word ("30s", "1m30s").
func (s *Scanner) Duration(what string, allowZero bool) (time.Duration, error) {
	w, col := s.Word()
	if w == "" {
		return 0, s.Errf(col, "expected %s duration (like 30s)", what)
	}
	d, err := time.ParseDuration(w)
	if err != nil {
		return 0, s.Errf(col, "bad %s duration %q (want a Go duration like 30s or 1m)", what, w)
	}
	if d < 0 || (!allowZero && d == 0) {
		return 0, s.Errf(col, "%s duration must be positive, got %q", what, w)
	}
	return d, nil
}

// ValidName reports whether a rule name is usable as a series-name
// component: letters, digits, '_', '-', '.'.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// QuoteMetric re-quotes metric selectors that need it — anything the
// scanner treats as a delimiter, plus '#' so a rendered rule survives a
// rule file's comment stripping, plus a leading segment the selector
// parser would otherwise read as a source label.
func QuoteMetric(m string) string {
	if strings.ContainsAny(m, WordBreak+"#") {
		return fmt.Sprintf("%q", m)
	}
	if seg, _, found := strings.Cut(m, "/"); found && !monitor.ReservedNamespace(seg) {
		return fmt.Sprintf("%q", m)
	}
	return m
}

// QuoteSource re-quotes source selectors the parser could not read back
// bare: delimiters, a '/' inside the label, or a label that collides
// with a reserved metric namespace.
func QuoteSource(s string) string {
	if strings.ContainsAny(s, WordBreak+"#/") || monitor.ReservedNamespace(s) {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// RenderSelector renders a (source, metric, matchers) triple back in
// selector syntax so the scanner reads it into the same triple.
// Matcher values render raw inside their quotes — anything the parser
// accepted contains no '"', so the round trip is verbatim.
func RenderSelector(source, metric string, matchers []monitor.Label) string {
	sel := QuoteMetric(metric)
	if source != "" {
		sel = QuoteSource(source) + "/" + sel
	}
	if len(matchers) == 0 {
		return sel
	}
	var b strings.Builder
	b.WriteString(sel)
	b.WriteByte('{')
	for i, m := range matchers {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, m.Name, m.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// FormatSeconds renders a simulated-seconds quantity as a Go duration.
func FormatSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).String()
}

// StripComment removes a '#' comment, respecting quoted metrics.
func StripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}
