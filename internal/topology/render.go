package topology

import (
	"fmt"
	"strings"
)

const thinRule = "-------------------------------------------------------------"
const starRule = "*************************************************************"

// RenderOptions steer the text report.
type RenderOptions struct {
	ExtendedCaches bool // -c: print associativity, sets, line size, inclusiveness
	ASCIIArt       bool // -g: append the cache/socket diagram
	NUMA           bool // include the NUMA Topology section when attached
}

// Render produces the likwid-topology text report for a decoded node,
// structured like the listing in §II-B of the paper.
func (info *Info) Render(opt RenderOptions) string {
	var b strings.Builder
	fmt.Fprintln(&b, thinRule)
	fmt.Fprintf(&b, "CPU name:\t%s\n", info.CPUName)
	fmt.Fprintf(&b, "CPU clock:\t%.2f GHz\n", info.ClockMHz/1000)
	fmt.Fprintln(&b, starRule)
	fmt.Fprintln(&b, "Hardware Thread Topology")
	fmt.Fprintln(&b, starRule)
	fmt.Fprintf(&b, "Sockets:\t\t%d\n", info.Sockets)
	fmt.Fprintf(&b, "Cores per socket:\t%d\n", info.CoresPerSocket)
	fmt.Fprintf(&b, "Threads per core:\t%d\n", info.ThreadsPerCore)
	fmt.Fprintln(&b, thinRule)
	fmt.Fprintln(&b, "HWThread\tThread\t\tCore\t\tSocket")
	for _, t := range info.Threads {
		fmt.Fprintf(&b, "%d\t\t%d\t\t%d\t\t%d\n", t.Proc, t.ThreadID, t.CoreID, t.SocketID)
	}
	fmt.Fprintln(&b, thinRule)
	for i, procs := range info.SocketGroups {
		fmt.Fprintf(&b, "Socket %d: %s\n", i, groupString(procs))
	}
	fmt.Fprintln(&b, thinRule)
	fmt.Fprintln(&b, starRule)
	fmt.Fprintln(&b, "Cache Topology")
	fmt.Fprintln(&b, starRule)
	for _, c := range info.Caches {
		fmt.Fprintf(&b, "Level:\t%d\n", c.Level)
		fmt.Fprintf(&b, "Size:\t%s\n", sizeString(c.SizeKB))
		fmt.Fprintf(&b, "Type:\t%s\n", c.Type)
		if opt.ExtendedCaches {
			fmt.Fprintf(&b, "Associativity:\t%d\n", c.Assoc)
			fmt.Fprintf(&b, "Number of sets:\t%d\n", c.Sets)
			fmt.Fprintf(&b, "Cache line size:\t%d\n", c.LineSize)
			if c.Inclusive {
				fmt.Fprintln(&b, "Inclusive cache")
			} else {
				fmt.Fprintln(&b, "Non Inclusive cache")
			}
			fmt.Fprintf(&b, "Shared among %d threads\n", c.SharedBy)
		}
		fmt.Fprintf(&b, "Cache groups:\t%s\n", groupsString(c.Groups))
		fmt.Fprintln(&b, thinRule)
	}
	if opt.NUMA {
		b.WriteString(info.RenderNUMA())
	}
	if opt.ASCIIArt {
		b.WriteString(info.ASCIIArt())
	}
	return b.String()
}

func groupString(procs []int) string {
	parts := make([]string, len(procs))
	for i, p := range procs {
		parts[i] = fmt.Sprint(p)
	}
	return "( " + strings.Join(parts, " ") + " )"
}

func groupsString(groups [][]int) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = groupString(g)
	}
	return strings.Join(parts, " ")
}

func sizeString(kb int) string {
	if kb >= 1024 && kb%1024 == 0 {
		return fmt.Sprintf("%d MB", kb/1024)
	}
	return fmt.Sprintf("%d kB", kb)
}

// ASCIIArt draws one box per socket showing the per-core hardware threads
// and the cache hierarchy, socket-shared caches spanning the full width —
// the output of likwid-topology -g.
func (info *Info) ASCIIArt() string {
	var b strings.Builder
	for s, procs := range info.SocketGroups {
		fmt.Fprintf(&b, "Socket %d:\n", s)
		b.WriteString(info.socketArt(procs))
	}
	return b.String()
}

func (info *Info) socketArt(procs []int) string {
	// Column per core: the SMT threads sharing an L1.
	cores := groupsWithin(info, procs, 1)
	cells := make([]string, len(cores))
	for i, g := range cores {
		ids := make([]string, len(g))
		for j, p := range g {
			ids[j] = fmt.Sprint(p)
		}
		cells[i] = strings.Join(ids, " ")
	}
	// Cell width: widest of thread list and cache size strings.
	width := 0
	for _, c := range cells {
		if len(c) > width {
			width = len(c)
		}
	}
	for _, c := range info.Caches {
		if s := sizeString(c.SizeKB); len(s) > width {
			width = len(s)
		}
	}
	width += 2 // padding

	var rows []string
	rows = append(rows, boxRow(cells, width))
	for _, c := range info.Caches {
		groups := groupsWithin(info, procs, c.Level)
		labels := make([]string, len(groups))
		for i := range groups {
			labels[i] = sizeString(c.SizeKB)
		}
		// Width of a box spanning k cores: k cells plus separators.
		perBox := len(cores) / len(groups)
		span := perBox*(width+2) + (perBox - 1)
		rows = append(rows, boxRowSpan(labels, span))
	}
	inner := 0
	for _, r := range rows {
		for _, line := range strings.Split(r, "\n") {
			if len(line) > inner {
				inner = len(line)
			}
		}
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", inner+2) + "+\n")
	for _, r := range rows {
		for _, line := range strings.Split(strings.TrimRight(r, "\n"), "\n") {
			fmt.Fprintf(&b, "| %-*s |\n", inner, line)
		}
	}
	b.WriteString("+" + strings.Repeat("-", inner+2) + "+\n")
	return b.String()
}

// groupsWithin returns the cache-sharing groups of the given level
// restricted to one socket's processors (for level 1, the per-core thread
// groups).
func groupsWithin(info *Info, procs []int, level int) [][]int {
	inSocket := map[int]bool{}
	for _, p := range procs {
		inSocket[p] = true
	}
	var cache *Cache
	for i := range info.Caches {
		if info.Caches[i].Level == level {
			cache = &info.Caches[i]
			break
		}
	}
	if cache == nil {
		// No such level: treat every core's thread set as a group.
		return nil
	}
	var out [][]int
	for _, g := range cache.Groups {
		var filtered []int
		for _, p := range g {
			if inSocket[p] {
				filtered = append(filtered, p)
			}
		}
		if len(filtered) > 0 {
			out = append(out, filtered)
		}
	}
	return out
}

func boxRow(cells []string, width int) string {
	top, mid, bot := &strings.Builder{}, &strings.Builder{}, &strings.Builder{}
	for i, c := range cells {
		if i > 0 {
			top.WriteByte(' ')
			mid.WriteByte(' ')
			bot.WriteByte(' ')
		}
		top.WriteString("+" + strings.Repeat("-", width) + "+")
		fmt.Fprintf(mid, "|%s|", center(c, width))
		bot.WriteString("+" + strings.Repeat("-", width) + "+")
	}
	return top.String() + "\n" + mid.String() + "\n" + bot.String() + "\n"
}

func boxRowSpan(labels []string, span int) string {
	top, mid, bot := &strings.Builder{}, &strings.Builder{}, &strings.Builder{}
	for i, l := range labels {
		if i > 0 {
			top.WriteByte(' ')
			mid.WriteByte(' ')
			bot.WriteByte(' ')
		}
		top.WriteString("+" + strings.Repeat("-", span-2) + "+")
		fmt.Fprintf(mid, "|%s|", center(l, span-2))
		bot.WriteString("+" + strings.Repeat("-", span-2) + "+")
	}
	return top.String() + "\n" + mid.String() + "\n" + bot.String() + "\n"
}

func center(s string, width int) string {
	if len(s) >= width {
		return s[:width]
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-len(s)-left)
}
