package monitor

import (
	"math/rand"
	"testing"
)

// FuzzSelect drives the Select/brute-force differential with fuzzed
// selector dimensions (arbitrary patterns, dialect and any-flags) over
// a deterministic randomized store, so the candidate-narrowing logic
// can never silently drop or reorder a matching series for a pattern
// shape nobody thought to enumerate.
func FuzzSelect(f *testing.F) {
	f.Add(int64(1), "nodeA", "bw", false, "job", "a", uint8(3), 0, false, false, false)
	f.Add(int64(2), "*", "flops*", true, "job", "*", uint8(3), 0, false, true, true)
	f.Add(int64(3), "", "likwid_bw", true, "cluster", "em*", uint8(2), 1, false, false, false)
	f.Add(int64(4), "node*", "memory_bandwidth_mbytes_s", true, "", "", uint8(3), 0, false, false, true)
	f.Add(int64(5), "self", "alert/*", false, "job", "zz", uint8(0), 2, true, true, false)
	f.Add(int64(6), "zzz", "*flops*", false, "cluster", "emmy", uint8(1), -3, false, false, false)

	pool := keyPool(f)
	f.Fuzz(func(t *testing.T, seed int64, source, metric string, queryForm bool,
		labelName, labelValue string, scopeByte uint8, id int,
		anySource, anyScope, anyID bool) {
		rng := rand.New(rand.NewSource(seed))
		st := NewStore(4)
		perm := rng.Perm(len(pool))
		n := 1 + rng.Intn(63)
		if n > len(perm) {
			n = len(perm)
		}
		for _, pi := range perm[:n] {
			st.Append(pool[pi], Point{Time: 1, Value: 1})
		}
		sel := Selector{
			Source: source, AnySource: anySource,
			Metric: metric, QueryForm: queryForm,
			Scope: Scope(scopeByte % 4), AnyScope: anyScope,
			ID: id, AnyID: anyID,
		}
		if labelName != "" {
			sel.Labels = []Label{{Name: labelName, Value: labelValue}}
		}
		got := st.Select(sel)
		want := bruteSelect(st, sel)
		if !keysEqual(got, want) {
			t.Fatalf("Select(%+v)\n got  %v\n want %v", sel, got, want)
		}
	})
}
