package hwdef

// Event tables per microarchitecture family.
//
// The encodings (event-select code, unit mask) follow the vendor manuals
// where practical; where the original silicon used vendor-specific register
// blocks that this model does not distinguish, the encodings are modeled but
// kept internally consistent: the same (code, umask) pair that perfctr
// programs into an event-select register is what the machine's event engine
// matches against when it delivers counts.  Two event names are unified
// across all architectures because the derived-metric engine depends on
// them: INSTR_RETIRED_ANY and CPU_CLK_UNHALTED_CORE.

func eventTable(events ...Event) map[string]Event {
	m := make(map[string]Event, len(events))
	for _, ev := range events {
		m[ev.Name] = ev
	}
	return m
}

func fixedEvents() []Event {
	return []Event{
		{Name: "INSTR_RETIRED_ANY", Code: 0xC0, Umask: 0x00, Domain: DomainFixed, FixedIndex: 0},
		{Name: "CPU_CLK_UNHALTED_CORE", Code: 0x3C, Umask: 0x00, Domain: DomainFixed, FixedIndex: 1},
		{Name: "CPU_CLK_UNHALTED_REF", Code: 0x3C, Umask: 0x01, Domain: DomainFixed, FixedIndex: 2},
	}
}

// core2Events is the table for the Intel Core 2 family (65 and 45 nm),
// also reused by Atom which shares most encodings of that era.
func core2Events() map[string]Event {
	evs := fixedEvents()
	evs = append(evs,
		Event{Name: "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", Code: 0xCA, Umask: 0x04, Domain: DomainPMC},
		Event{Name: "SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE", Code: 0xCA, Umask: 0x08, Domain: DomainPMC},
		Event{Name: "SIMD_COMP_INST_RETIRED_PACKED_SINGLE", Code: 0xCA, Umask: 0x01, Domain: DomainPMC},
		Event{Name: "SIMD_COMP_INST_RETIRED_SCALAR_SINGLE", Code: 0xCA, Umask: 0x02, Domain: DomainPMC},
		Event{Name: "L1D_REPL", Code: 0x45, Umask: 0x0F, Domain: DomainPMC},
		Event{Name: "L1D_M_EVICT", Code: 0x47, Umask: 0x00, Domain: DomainPMC},
		Event{Name: "L1D_ALL_REF", Code: 0x43, Umask: 0x01, Domain: DomainPMC},
		Event{Name: "L2_LINES_IN_ANY", Code: 0x24, Umask: 0x70, Domain: DomainPMC},
		Event{Name: "L2_LINES_OUT_ANY", Code: 0x26, Umask: 0x70, Domain: DomainPMC},
		Event{Name: "L2_RQSTS_REFERENCES", Code: 0x2E, Umask: 0x41, Domain: DomainPMC},
		Event{Name: "L2_RQSTS_MISS", Code: 0x2E, Umask: 0x42, Domain: DomainPMC},
		Event{Name: "BUS_TRANS_MEM_ALL", Code: 0x6F, Umask: 0xC0, Domain: DomainPMC},
		Event{Name: "INST_RETIRED_LOADS", Code: 0xC1, Umask: 0x01, Domain: DomainPMC},
		Event{Name: "INST_RETIRED_STORES", Code: 0xC1, Umask: 0x02, Domain: DomainPMC},
		Event{Name: "BR_INST_RETIRED_ANY", Code: 0xC4, Umask: 0x00, Domain: DomainPMC},
		Event{Name: "BR_INST_RETIRED_MISPRED", Code: 0xC5, Umask: 0x00, Domain: DomainPMC},
		Event{Name: "DTLB_MISSES_ANY", Code: 0x08, Umask: 0x01, Domain: DomainPMC},
	)
	return eventTable(evs...)
}

// nehalemEvents covers Nehalem and Westmere cores including the per-socket
// uncore block (L3 and integrated memory controller events).
func nehalemEvents() map[string]Event {
	evs := fixedEvents()
	evs = append(evs,
		Event{Name: "FP_COMP_OPS_EXE_SSE_FP_PACKED", Code: 0x10, Umask: 0x10, Domain: DomainPMC},
		Event{Name: "FP_COMP_OPS_EXE_SSE_FP_SCALAR", Code: 0x10, Umask: 0x20, Domain: DomainPMC},
		Event{Name: "FP_COMP_OPS_EXE_SSE_SINGLE_PRECISION", Code: 0x10, Umask: 0x40, Domain: DomainPMC},
		Event{Name: "FP_COMP_OPS_EXE_SSE_DOUBLE_PRECISION", Code: 0x10, Umask: 0x80, Domain: DomainPMC},
		Event{Name: "L1D_REPL", Code: 0x51, Umask: 0x01, Domain: DomainPMC},
		Event{Name: "L1D_M_EVICT", Code: 0x51, Umask: 0x04, Domain: DomainPMC},
		Event{Name: "L1D_ALL_REF", Code: 0x43, Umask: 0x01, Domain: DomainPMC},
		Event{Name: "MEM_INST_RETIRED_LOADS", Code: 0x0B, Umask: 0x01, Domain: DomainPMC},
		Event{Name: "MEM_INST_RETIRED_STORES", Code: 0x0B, Umask: 0x02, Domain: DomainPMC},
		Event{Name: "L2_LINES_IN_ANY", Code: 0xF1, Umask: 0x07, Domain: DomainPMC},
		Event{Name: "L2_LINES_OUT_ANY", Code: 0xF2, Umask: 0x0F, Domain: DomainPMC},
		Event{Name: "L2_RQSTS_REFERENCES", Code: 0x24, Umask: 0xFF, Domain: DomainPMC},
		Event{Name: "L2_RQSTS_MISS", Code: 0x24, Umask: 0xAA, Domain: DomainPMC},
		Event{Name: "BR_INST_RETIRED_ANY", Code: 0xC4, Umask: 0x04, Domain: DomainPMC},
		Event{Name: "BR_INST_RETIRED_MISPRED", Code: 0xC5, Umask: 0x02, Domain: DomainPMC},
		Event{Name: "DTLB_MISSES_ANY", Code: 0x49, Umask: 0x01, Domain: DomainPMC},
		// Uncore: one block per socket, shared by all cores of the socket.
		Event{Name: "UNC_L3_LINES_IN_ANY", Code: 0x0A, Umask: 0x0F, Domain: DomainUncore},
		Event{Name: "UNC_L3_LINES_OUT_ANY", Code: 0x0B, Umask: 0x0F, Domain: DomainUncore},
		Event{Name: "UNC_L3_HITS_ANY", Code: 0x08, Umask: 0x03, Domain: DomainUncore},
		Event{Name: "UNC_L3_MISS_ANY", Code: 0x09, Umask: 0x03, Domain: DomainUncore},
		Event{Name: "UNC_QMC_NORMAL_READS_ANY", Code: 0x2C, Umask: 0x07, Domain: DomainUncore},
		Event{Name: "UNC_QMC_WRITES_FULL_ANY", Code: 0x2D, Umask: 0x07, Domain: DomainUncore},
	)
	return eventTable(evs...)
}

// atomEvents is the reduced Core2-style table of the in-order Atom.
func atomEvents() map[string]Event {
	base := core2Events()
	// Atom has no L2 eviction counting and no bus-memory breakdown in this
	// model; it keeps the SIMD and L1/L2 fill events.
	delete(base, "L2_LINES_OUT_ANY")
	delete(base, "L1D_M_EVICT")
	return base
}

// pentiumMEvents is the pre-architectural-perfmon table: no fixed counters,
// instructions and cycles are counted on the two programmable counters.
func pentiumMEvents() map[string]Event {
	return eventTable(
		Event{Name: "INSTR_RETIRED_ANY", Code: 0xC0, Umask: 0x00, Domain: DomainPMC},
		Event{Name: "CPU_CLK_UNHALTED_CORE", Code: 0x79, Umask: 0x00, Domain: DomainPMC},
		Event{Name: "EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DOUBLE", Code: 0xD9, Umask: 0x04, Domain: DomainPMC},
		Event{Name: "EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_DOUBLE", Code: 0xD9, Umask: 0x08, Domain: DomainPMC},
		Event{Name: "EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_SINGLE", Code: 0xD9, Umask: 0x01, Domain: DomainPMC},
		Event{Name: "EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_SINGLE", Code: 0xD9, Umask: 0x02, Domain: DomainPMC},
		Event{Name: "DCU_LINES_IN", Code: 0x45, Umask: 0x00, Domain: DomainPMC},
		Event{Name: "L2_LINES_IN_ANY", Code: 0x24, Umask: 0x00, Domain: DomainPMC},
		Event{Name: "BUS_TRANS_MEM_ALL", Code: 0x6F, Umask: 0x00, Domain: DomainPMC},
		Event{Name: "BR_INST_RETIRED_ANY", Code: 0xC4, Umask: 0x00, Domain: DomainPMC},
		Event{Name: "BR_INST_RETIRED_MISPRED", Code: 0xC5, Umask: 0x00, Domain: DomainPMC},
		Event{Name: "DTLB_MISSES_ANY", Code: 0x08, Umask: 0x01, Domain: DomainPMC},
	)
}

// amdCoreEvents is shared between K8 and K10.  AMD has no fixed counters:
// instructions and cycles occupy programmable slots.
func amdCoreEvents() []Event {
	return []Event{
		{Name: "INSTR_RETIRED_ANY", Code: 0xC0, Umask: 0x00, Domain: DomainPMC},
		{Name: "CPU_CLK_UNHALTED_CORE", Code: 0x76, Umask: 0x00, Domain: DomainPMC},
		{Name: "RETIRED_SSE_OPERATIONS_PACKED_DOUBLE", Code: 0xEE, Umask: 0x04, Domain: DomainPMC},
		{Name: "RETIRED_SSE_OPERATIONS_SCALAR_DOUBLE", Code: 0xEE, Umask: 0x08, Domain: DomainPMC},
		{Name: "RETIRED_SSE_OPERATIONS_PACKED_SINGLE", Code: 0xEE, Umask: 0x01, Domain: DomainPMC},
		{Name: "RETIRED_SSE_OPERATIONS_SCALAR_SINGLE", Code: 0xEE, Umask: 0x02, Domain: DomainPMC},
		{Name: "DATA_CACHE_ACCESSES", Code: 0x40, Umask: 0x00, Domain: DomainPMC},
		{Name: "DATA_CACHE_REFILLS_ALL", Code: 0x42, Umask: 0x1F, Domain: DomainPMC},
		{Name: "DATA_CACHE_EVICTED_ALL", Code: 0x44, Umask: 0x3F, Domain: DomainPMC},
		{Name: "L2_FILL_ALL", Code: 0x7F, Umask: 0x01, Domain: DomainPMC},
		{Name: "L2_WRITEBACK_ALL", Code: 0x7F, Umask: 0x02, Domain: DomainPMC},
		{Name: "L2_REQUESTS_ALL", Code: 0x7D, Umask: 0x1F, Domain: DomainPMC},
		{Name: "L2_MISSES_ALL", Code: 0x7E, Umask: 0x0F, Domain: DomainPMC},
		{Name: "LS_DISPATCH_LOADS", Code: 0x29, Umask: 0x01, Domain: DomainPMC},
		{Name: "LS_DISPATCH_STORES", Code: 0x29, Umask: 0x02, Domain: DomainPMC},
		{Name: "BR_INST_RETIRED_ANY", Code: 0xC2, Umask: 0x00, Domain: DomainPMC},
		{Name: "BR_INST_RETIRED_MISPRED", Code: 0xC3, Umask: 0x00, Domain: DomainPMC},
		{Name: "DTLB_MISSES_ANY", Code: 0x46, Umask: 0x07, Domain: DomainPMC},
	}
}

// k8Events: K8 has no on-die L3 and its northbridge events are not modeled
// as a shared counter block, so the table stops at L2.
func k8Events() map[string]Event {
	return eventTable(amdCoreEvents()...)
}

// k10Events adds the shared L3 and DRAM-controller (northbridge) events.
// The four northbridge counters per node behave like Intel uncore counters:
// they are a per-socket shared resource requiring socket locks.
func k10Events() map[string]Event {
	evs := amdCoreEvents()
	evs = append(evs,
		Event{Name: "UNC_L3_READ_REQUESTS_ALL", Code: 0xE0, Umask: 0xF7, Domain: DomainUncore},
		Event{Name: "UNC_L3_MISSES_ALL", Code: 0xE1, Umask: 0xF7, Domain: DomainUncore},
		Event{Name: "UNC_L3_LINES_IN_ANY", Code: 0xE1, Umask: 0xF8, Domain: DomainUncore},
		Event{Name: "UNC_L3_LINES_OUT_ANY", Code: 0xE2, Umask: 0xF8, Domain: DomainUncore},
		Event{Name: "UNC_DRAM_ACCESSES_READS", Code: 0xE8, Umask: 0x07, Domain: DomainUncore},
		Event{Name: "UNC_DRAM_ACCESSES_WRITES", Code: 0xE9, Umask: 0x07, Domain: DomainUncore},
	)
	return eventTable(evs...)
}
