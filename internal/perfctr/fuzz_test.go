package perfctr

import "testing"

// FuzzCompileExpr: the formula parser must never panic, and compiled
// formulas must evaluate without panicking against an empty environment
// (errors are fine).
func FuzzCompileExpr(f *testing.F) {
	for _, seed := range []string{
		"1.0E-06*(A*2+B)/time",
		"A/B", "-(X)", "((1))", "1e", "*", "", "a b", "1.0E-06*",
		"CPU_CLK_UNHALTED_CORE/clock",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := CompileExpr(src)
		if err != nil {
			return
		}
		_, _ = expr.Eval(map[string]float64{})
		_, _ = expr.Eval(map[string]float64{"time": 1, "clock": 2e9})
		vars := expr.Vars()
		env := map[string]float64{}
		for _, v := range vars {
			env[v] = 1
		}
		if _, err := expr.Eval(env); err != nil {
			t.Fatalf("CompileExpr(%q): eval with all vars bound failed: %v", src, err)
		}
	})
}

// FuzzParseEventList: never panics; accepted specs have nonempty events.
func FuzzParseEventList(f *testing.F) {
	for _, seed := range []string{"A:PMC0,B:PMC1", "A", "", ",,,", "A:B:C"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		specs, err := ParseEventList(s)
		if err != nil {
			return
		}
		for _, spec := range specs {
			if spec.Event == "" {
				t.Fatalf("ParseEventList(%q) accepted empty event name", s)
			}
		}
	})
}
