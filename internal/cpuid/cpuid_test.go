package cpuid

import (
	"testing"
	"testing/quick"

	"likwid/internal/hwdef"
)

func TestVendorString(t *testing.T) {
	for _, name := range []string{"westmereEP", "istanbul"} {
		a, _ := hwdef.Lookup(name)
		c := NewNode(a)[0]
		r := c.Query(0, 0)
		got := unpack(r.EBX) + unpack(r.EDX) + unpack(r.ECX)
		if got != a.Vendor.String() {
			t.Errorf("%s: vendor = %q, want %q", name, got, a.Vendor.String())
		}
	}
}

func unpack(v uint32) string {
	return string([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

func TestSignatureRoundtripRegistered(t *testing.T) {
	for _, name := range hwdef.Names() {
		a, _ := hwdef.Lookup(name)
		fam, mod, step := DecodeSignature(Signature(a.Family, a.Model, a.Stepping))
		if fam != a.Family || mod != a.Model || step != a.Stepping {
			t.Errorf("%s: roundtrip (%d,%d,%d) != (%d,%d,%d)",
				name, fam, mod, step, a.Family, a.Model, a.Stepping)
		}
	}
}

func TestSignatureRoundtripProperty(t *testing.T) {
	// Family 6 (Intel) and 15+ (AMD) with models up to 255 must roundtrip.
	f := func(famSel bool, model uint8, stepping uint8) bool {
		family := 6
		if famSel {
			family = 15 + int(model%16)
		}
		fam, mod, step := DecodeSignature(Signature(family, int(model), int(stepping%16)))
		return fam == family && mod == int(model) && step == int(stepping%16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestLeaf1APICIDs(t *testing.T) {
	a := hwdef.WestmereEP
	cpus := NewNode(a)
	seen := map[uint32]bool{}
	for _, c := range cpus {
		id := c.Query(1, 0).EBX >> 24
		if seen[id] {
			t.Fatalf("duplicate initial APIC ID %d", id)
		}
		seen[id] = true
	}
	// HTT flag must be set on a multi-threaded package.
	if cpus[0].Query(1, 0).EDX&FeatHTT == 0 {
		t.Error("HTT flag not set on SMT part")
	}
}

func TestLeafBWestmere(t *testing.T) {
	c := NewNode(hwdef.WestmereEP)[13] // SMT sibling of core 1 socket 0
	sub0 := c.Query(0xB, 0)
	if sub0.EAX != 1 {
		t.Errorf("SMT shift = %d, want 1", sub0.EAX)
	}
	if typ := sub0.ECX >> 8 & 0xFF; typ != LevelTypeSMT {
		t.Errorf("subleaf 0 level type = %d, want SMT", typ)
	}
	sub1 := c.Query(0xB, 1)
	if sub1.EAX != 5 {
		t.Errorf("package shift = %d, want 5 (1 SMT bit + 4 core bits)", sub1.EAX)
	}
	if sub1.EBX != 12 {
		t.Errorf("logical per package = %d, want 12", sub1.EBX)
	}
	// x2APIC ID of proc 13: socket 0, phys core 1, smt 1 -> 0b00011.
	if sub0.EDX != 3 {
		t.Errorf("x2APIC = %d, want 3", sub0.EDX)
	}
	// Termination.
	sub2 := c.Query(0xB, 2)
	if sub2.EBX != 0 || sub2.ECX>>8&0xFF != LevelTypeInvalid {
		t.Error("subleaf 2 must terminate enumeration")
	}
}

func TestLeaf4Westmere(t *testing.T) {
	c := NewNode(hwdef.WestmereEP)[0]
	// Subleaf 0 is the L1D: 32 kB, 8-way, 64 sets, shared by 2 (span 2).
	r := c.Query(4, 0)
	if typ := r.EAX & 0x1F; typ != uint32(hwdef.DataCache) {
		t.Fatalf("subleaf 0 type = %d, want data", typ)
	}
	ways := r.EBX>>22&0x3FF + 1
	line := r.EBX&0xFFF + 1
	sets := r.ECX + 1
	if ways != 8 || line != 64 || sets != 64 {
		t.Errorf("L1D geometry = %d-way %dB %d sets, want 8/64/64", ways, line, sets)
	}
	if span := r.EAX>>14&0xFFF + 1; span != 2 {
		t.Errorf("L1D span = %d, want 2", span)
	}
	// The L3 (subleaf 3) spans the whole package: 32 APIC slots.
	r3 := c.Query(4, 3)
	if span := r3.EAX>>14&0xFFF + 1; span != 32 {
		t.Errorf("L3 span = %d, want 32 (full package APIC space)", span)
	}
	if r3.EDX&2 != 0 {
		t.Error("Westmere L3 must report non-inclusive")
	}
	// Enumeration terminates.
	if c.Query(4, 4).EAX&0x1F != 0 {
		t.Error("subleaf 4 must be the null descriptor")
	}
}

func TestLeaf2PentiumM(t *testing.T) {
	c := NewNode(hwdef.PentiumM)[0]
	r := c.Query(2, 0)
	if r.EAX&0xFF != 1 {
		t.Fatalf("leaf 2 AL = %d, want 1", r.EAX&0xFF)
	}
	// Collect descriptor bytes and expect the 32 kB L1D (0x2C) and the
	// 2 MB L2 (0x7D) of the Dothan.
	found := map[byte]bool{}
	for _, reg := range []uint32{r.EAX, r.EBX, r.ECX, r.EDX} {
		for i := 0; i < 4; i++ {
			found[byte(reg>>(8*i))] = true
		}
	}
	if !found[0x2C] || !found[0x7D] {
		t.Errorf("descriptors missing: got %v, want 0x2C and 0x7D present", found)
	}
}

func TestBrandString(t *testing.T) {
	c := NewNode(hwdef.Core2Quad)[0]
	var s string
	for leaf := uint32(0x80000002); leaf <= 0x80000004; leaf++ {
		r := c.Query(leaf, 0)
		s += unpack(r.EAX) + unpack(r.EBX) + unpack(r.ECX) + unpack(r.EDX)
	}
	for len(s) > 0 && s[len(s)-1] == 0 {
		s = s[:len(s)-1]
	}
	if s != "Intel Core 2 45nm processor" {
		t.Errorf("brand = %q", s)
	}
}

func TestAMDLeaves(t *testing.T) {
	c := NewNode(hwdef.Istanbul)[0]
	l1 := c.Query(0x80000005, 0)
	if size := l1.ECX >> 24; size != 64 {
		t.Errorf("L1D size = %d kB, want 64", size)
	}
	l23 := c.Query(0x80000006, 0)
	if size := l23.ECX >> 16; size != 512 {
		t.Errorf("L2 size = %d kB, want 512", size)
	}
	if units := l23.EDX >> 18; units*512 != 6144 {
		t.Errorf("L3 size = %d kB, want 6144", units*512)
	}
	if assoc := AMDAssocDecode[l23.EDX>>12&0xF]; assoc != 48 {
		t.Errorf("L3 assoc = %d, want 48", assoc)
	}
	ext8 := c.Query(0x80000008, 0)
	if cores := ext8.ECX&0xFF + 1; cores != 6 {
		t.Errorf("cores per package = %d, want 6", cores)
	}
}

func TestLeafAPerfmon(t *testing.T) {
	c := NewNode(hwdef.WestmereEP)[0]
	r := c.Query(0xA, 0)
	if pmc := r.EAX >> 8 & 0xFF; pmc != 4 {
		t.Errorf("PMC count = %d, want 4", pmc)
	}
	if fixed := r.EDX & 0x1F; fixed != 3 {
		t.Errorf("fixed counters = %d, want 3", fixed)
	}
	// Core 2: version 2, 2 PMCs.
	c2 := NewNode(hwdef.Core2Quad)[0]
	r2 := c2.Query(0xA, 0)
	if pmc := r2.EAX >> 8 & 0xFF; pmc != 2 {
		t.Errorf("Core2 PMC count = %d, want 2", pmc)
	}
}

func TestUnimplementedLeafIsZero(t *testing.T) {
	c := NewNode(hwdef.K8)[0]
	if r := c.Query(0xB, 0); r != (Regs{}) {
		t.Errorf("leaf 0xB on K8 = %+v, want zeros", r)
	}
	if r := c.Query(0x4, 0); r != (Regs{}) {
		t.Errorf("leaf 0x4 on K8 = %+v, want zeros", r)
	}
}
