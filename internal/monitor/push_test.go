package monitor

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// epochClock pins PushOptions.Now at the epoch, which disables sent_at
// stamping — the wire bytes stay identical to the pre-sent_at format.
func epochClock() time.Time { return time.Unix(0, 0) }

// captureReceiver records gunzipped /ingest payloads.
type captureReceiver struct {
	mu       sync.Mutex
	payloads [][]byte
	headers  []http.Header
	failNext int32 // requests to reject with 500 before accepting
}

func (c *captureReceiver) handler(w http.ResponseWriter, r *http.Request) {
	if atomic.AddInt32(&c.failNext, -1) >= 0 {
		http.Error(w, "simulated outage", http.StatusInternalServerError)
		return
	}
	body := io.Reader(r.Body)
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		defer zr.Close()
		body = zr
	}
	data, err := io.ReadAll(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.payloads = append(c.payloads, data)
	c.headers = append(c.headers, r.Header.Clone())
	c.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

func TestPushSinkWireFormatGolden(t *testing.T) {
	rec := &captureReceiver{}
	srv := httptest.NewServer(http.HandlerFunc(rec.handler))
	defer srv.Close()

	// The epoch clock disables sent_at stamping, pinning the original
	// (pre-sent_at) wire bytes; the stamped form has its own golden.
	p, err := NewPushSink(PushOptions{URL: srv.URL, FlushSamples: 1 << 20, Now: epochClock})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range goldenBatches() {
		if err := p.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.payloads) != 1 {
		t.Fatalf("receiver saw %d pushes, want 1", len(rec.payloads))
	}
	h := rec.headers[0]
	if h.Get("Content-Encoding") != "gzip" || h.Get("Content-Type") != "application/x-ndjson" {
		t.Errorf("push headers = enc %q type %q, want gzip/application/x-ndjson",
			h.Get("Content-Encoding"), h.Get("Content-Type"))
	}
	checkGolden(t, "push_batch.golden", rec.payloads[0])
}

// TestPushSinkWireFormatGoldenV2 pins the v2 schema: the agent's Source
// identity rides as a per-sample "source" field (never a metric
// prefix), and a sample that already carries its own Source — a
// receiver re-pushing fleet series — keeps it.
func TestPushSinkWireFormatGoldenV2(t *testing.T) {
	rec := &captureReceiver{}
	srv := httptest.NewServer(http.HandlerFunc(rec.handler))
	defer srv.Close()

	p, err := NewPushSink(PushOptions{URL: srv.URL, FlushSamples: 1 << 20, Source: "nodeA-7", Now: epochClock})
	if err != nil {
		t.Fatal(err)
	}
	batches := goldenBatches()
	// One relayed sample with its own source: the sink must not relabel it.
	batches[1].Samples = append(batches[1].Samples, Sample{
		Source: "nodeB-9", Metric: "dp_mflops_s", Scope: ScopeNode, ID: 0, Time: 1.0, Value: 99.5,
	})
	for _, b := range batches {
		if err := p.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.payloads) != 1 {
		t.Fatalf("receiver saw %d pushes, want 1", len(rec.payloads))
	}
	checkGolden(t, "push_batch_v2.golden", rec.payloads[0])
}

// TestPushSinkWireFormatGoldenV3 pins the v3 schema: the structured
// label set rides as a per-sample "labels" object (sorted keys, since
// encoding/json sorts map keys) and is omitted when empty — so an
// unlabelled v3 record is byte-identical to its v2 form.
func TestPushSinkWireFormatGoldenV3(t *testing.T) {
	rec := &captureReceiver{}
	srv := httptest.NewServer(http.HandlerFunc(rec.handler))
	defer srv.Close()

	p, err := NewPushSink(PushOptions{URL: srv.URL, FlushSamples: 1 << 20, Source: "nodeA-7", Now: epochClock})
	if err != nil {
		t.Fatal(err)
	}
	lbm := mustLabels(t, "job=lbm,cluster=emmy")
	batches := goldenBatches()
	// The agent stamp: every sample of the stream carries the label set.
	for bi := range batches {
		for si := range batches[bi].Samples {
			batches[bi].Samples[si].Labels = lbm
		}
	}
	// One unlabelled relayed sample: "labels" must be absent, not {}.
	batches[1].Samples = append(batches[1].Samples, Sample{
		Source: "nodeB-9", Metric: "dp_mflops_s", Scope: ScopeNode, ID: 0, Time: 1.0, Value: 99.5,
	})
	for _, b := range batches {
		if err := p.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.payloads) != 1 {
		t.Fatalf("receiver saw %d pushes, want 1", len(rec.payloads))
	}
	checkGolden(t, "push_batch_v3.golden", rec.payloads[0])
}

// TestPushSinkWireFormatGoldenV3SentAt pins the sent_at extension: each
// record carries the sink's wall-clock enqueue time as "sent_at" right
// after "time", stamped per Write call (both goldenBatches arrive in
// separate Writes, so the two batches carry successive stamps).  The
// field rides inside the v3 schema — a v3 receiver that ignores unknown
// fields decodes these payloads unchanged.
func TestPushSinkWireFormatGoldenV3SentAt(t *testing.T) {
	rec := &captureReceiver{}
	srv := httptest.NewServer(http.HandlerFunc(rec.handler))
	defer srv.Close()

	// A deterministic advancing clock: Write #1 stamps 100.5, #2 101.5.
	tick := 0
	now := func() time.Time {
		tick++
		return time.Unix(100, 0).Add(time.Duration(tick-1)*time.Second + 500*time.Millisecond)
	}
	p, err := NewPushSink(PushOptions{URL: srv.URL, FlushSamples: 1 << 20, Source: "nodeA-7", Now: now})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range goldenBatches() {
		if err := p.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.payloads) != 1 {
		t.Fatalf("receiver saw %d pushes, want 1", len(rec.payloads))
	}
	checkGolden(t, "push_batch_v3_sent_at.golden", rec.payloads[0])
}

// TestPushSinkCloseHonorsCancelledContext pins the shutdown bugfix: a
// flush against a dead receiver still makes its first attempt, but a
// cancelled context skips the backoff ladder, so Close returns promptly
// instead of sleeping through every retry.
func TestPushSinkCloseHonorsCancelledContext(t *testing.T) {
	rec := &captureReceiver{failNext: 1 << 30}
	srv := httptest.NewServer(http.HandlerFunc(rec.handler))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	p, err := NewPushSink(PushOptions{
		URL:          srv.URL,
		FlushSamples: 1 << 20, // nothing flushes before Close
		MaxAttempts:  5,
		RetryBase:    30 * time.Second, // the ladder would take minutes
		Context:      ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(goldenBatches()[0]); err != nil {
		t.Fatal(err)
	}
	cancel() // the agent is shutting down
	start := time.Now()
	if err := p.Close(); err == nil {
		t.Error("Close against a dead receiver succeeded, want the push error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close blocked %v with a cancelled context, want a prompt return", elapsed)
	}
	if got := p.Retries(); got != 1 {
		t.Errorf("Retries = %d, want exactly the single pre-cancellation attempt", got)
	}
}

// TestPushSinkCloseCountsAbandonedSamplesAsDrops pins the Close drop
// accounting: samples still buffered when the final flush fails have no
// next attempt — they must surface as drops in telemetry (with one
// structured warning), not vanish silently.
func TestPushSinkCloseCountsAbandonedSamplesAsDrops(t *testing.T) {
	rec := &captureReceiver{failNext: 1 << 30} // receiver stays dead
	srv := httptest.NewServer(http.HandlerFunc(rec.handler))
	defer srv.Close()

	var logBuf bytes.Buffer
	p, err := NewPushSink(PushOptions{
		URL:          srv.URL,
		FlushSamples: 1 << 20, // nothing flushes before Close
		MaxAttempts:  1,
		RetryBase:    time.Millisecond,
		Logger:       slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(goldenBatches()[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err == nil {
		t.Error("Close against a dead receiver succeeded, want the push error")
	}
	if got := p.Dropped(); got != 4 {
		t.Errorf("Dropped = %d, want the batch's 4 abandoned samples", got)
	}
	if got := p.Sent(); got != 0 {
		t.Errorf("Sent = %d, want 0", got)
	}
	if warns := strings.Count(logBuf.String(), "dropping"); warns != 1 {
		t.Errorf("abandonment warnings = %d, want exactly 1 (log: %s)", warns, logBuf.String())
	}
	// The buffer really was abandoned: a second Close is a clean no-op.
	if err := p.Close(); err != nil {
		t.Errorf("second Close = %v, want nil (pending already dropped)", err)
	}
	if got := p.Dropped(); got != 4 {
		t.Errorf("Dropped after second Close = %d, want still 4 (no double count)", got)
	}
}

func TestPushSinkRetriesThenSucceeds(t *testing.T) {
	rec := &captureReceiver{failNext: 2}
	srv := httptest.NewServer(http.HandlerFunc(rec.handler))
	defer srv.Close()

	p, err := NewPushSink(PushOptions{
		URL:          srv.URL,
		FlushSamples: 1,
		MaxAttempts:  3,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(goldenBatches()[0]); err != nil {
		t.Fatalf("Write should survive 2 outages with 3 attempts: %v", err)
	}
	if got := p.Retries(); got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
	if got := p.Sent(); got != 4 {
		t.Errorf("Sent = %d, want the batch's 4 samples", got)
	}
	if got := p.Pushes(); got != 1 {
		t.Errorf("Pushes = %d, want 1", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPushSinkKeepsBufferAcrossOutageAndBoundsIt(t *testing.T) {
	rec := &captureReceiver{failNext: 1 << 30}
	srv := httptest.NewServer(http.HandlerFunc(rec.handler))
	defer srv.Close()

	p, err := NewPushSink(PushOptions{
		URL:          srv.URL,
		FlushSamples: 4,
		MaxBuffered:  6,
		MaxAttempts:  2,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each golden batch has 4 samples, so every Write flushes — and
	// fails, keeping samples pending, bounded at 6 (oldest dropped).
	for i := 0; i < 3; i++ {
		if err := p.Write(goldenBatches()[i%2]); err == nil {
			t.Fatalf("Write %d succeeded during receiver outage", i)
		}
	}
	if got := p.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6 (12 buffered, cap 6)", got)
	}
	if got := p.Sent(); got != 0 {
		t.Errorf("Sent = %d during outage, want 0", got)
	}

	// Receiver recovers: Close flushes the surviving tail.
	atomic.StoreInt32(&rec.failNext, 0)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.Sent(); got != 6 {
		t.Errorf("Sent after recovery = %d, want the 6 retained samples", got)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.payloads) != 1 {
		t.Fatalf("receiver saw %d pushes after recovery, want 1", len(rec.payloads))
	}
}

func TestParsePushSinkSpec(t *testing.T) {
	for spec, want := range map[string]string{
		"push:collector:8090":             "http://collector:8090/ingest",
		"push:http://collector:8090":      "http://collector:8090/ingest",
		"push:https://c:8090/custom/path": "https://c:8090/custom/path",
		"push:127.0.0.1:9000":             "http://127.0.0.1:9000/ingest",
	} {
		s, err := ParseSink(context.Background(), spec, nil)
		if err != nil {
			t.Errorf("ParseSink(%q): %v", spec, err)
			continue
		}
		p, ok := s.(*PushSink)
		if !ok {
			t.Errorf("ParseSink(%q) built %T", spec, s)
			continue
		}
		if p.opts.URL != want {
			t.Errorf("ParseSink(%q) URL = %q, want %q", spec, p.opts.URL, want)
		}
	}
	for _, bad := range []string{"push:", "push:ftp://x/ingest", "push:http:///ingest"} {
		if _, err := ParseSink(context.Background(), bad, nil); err == nil {
			t.Errorf("ParseSink(%q) succeeded, want error", bad)
		}
		if err := ValidateSinkSpec(bad); err == nil {
			t.Errorf("ValidateSinkSpec(%q) succeeded, want error", bad)
		}
	}
	if err := ValidateSinkSpec("push:collector:8090"); err != nil {
		t.Errorf("ValidateSinkSpec(push:collector:8090): %v", err)
	}
}

// TestPushReceiveEndToEnd is the acceptance loop: agent A's dispatcher
// drives a push sink at agent B's /ingest; the batches land in B's
// tiered store, are queryable via B's /query, and a Window spanning raw
// and downsampled tiers returns ordered, correct results.
func TestPushReceiveEndToEnd(t *testing.T) {
	// Agent B: receiver with a small raw ring so downsampling engages.
	storeB := NewStore(16, Tier{Resolution: 1, Capacity: 64})
	b, err := NewHTTPSink("127.0.0.1:0", storeB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Agent A: push sink behind the async dispatcher, exactly the agent
	// pipeline minus the collectors.
	push, err := NewPushSink(PushOptions{
		URL:          "http://" + b.Addr() + "/ingest",
		FlushSamples: 32,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	const dt = 0.25
	// Queue deeper than the batch count: this test asserts delivery, not
	// the drop-and-count overflow policy (sink_test covers that).
	disp := NewDispatcher(n+8, push)
	for i := 0; i < n; i++ {
		tm := float64(i) * dt
		batch := Batch{Collector: "perfgroup/MEM_DP", Time: tm, Samples: []Sample{
			{Metric: "bw", Scope: ScopeNode, ID: 0, Time: tm, Value: float64(i)},
		}}
		if !disp.Publish(batch) {
			t.Fatalf("dispatcher dropped batch %d under capacity", i)
		}
	}
	if err := disp.Close(); err != nil {
		t.Fatal(err)
	}
	if got := push.Sent(); got != n {
		t.Fatalf("push sink sent %d samples, want %d", got, n)
	}

	// B's store now spans raw (newest 16 points) + 1 s buckets (older).
	k := Key{Metric: "bw", Scope: ScopeNode, ID: 0}
	pts := storeB.Window(k, 0, -1)
	if len(pts) <= 16 {
		t.Fatalf("stitched window has %d points, want raw(16) + downsampled history", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("window not time-ordered at %d: %v after %v", i, pts[i].Time, pts[i-1].Time)
		}
	}
	// The raw tail is verbatim; the ramp makes every stitched value
	// monotonic, downsampled averages included.
	last := pts[len(pts)-1]
	if last.Time != float64(n-1)*dt || last.Value != n-1 {
		t.Errorf("newest point = %+v, want t=%v v=%v", last, float64(n-1)*dt, n-1)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value {
			t.Errorf("ramp not monotonic at %d: %+v after %+v", i, pts[i], pts[i-1])
		}
	}

	// The same series is queryable over B's HTTP /query endpoint.
	code, body := get(t, "http://"+b.Addr()+"/query?metric=bw&scope=node&id=0")
	if code != http.StatusOK {
		t.Fatalf("/query status %d: %s", code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != len(pts) {
		t.Errorf("/query returned %d points, store window has %d", len(resp.Points), len(pts))
	}

	// And /metrics exposes the pushed series' latest value.
	code, body = get(t, "http://"+b.Addr()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, `likwid_bw{scope="node",id="0"}`) {
		t.Errorf("/metrics = %d %q, want the ingested bw series", code, body)
	}
}

// TestTwoAgentsFanIn checks several pushers aggregating into one
// receiver: every agent emits the SAME metric name (as real agents
// sampling the same group do), and the per-sink Source identity keeps
// the series distinct at the receiver.
func TestTwoAgentsFanIn(t *testing.T) {
	storeB := NewStore(64)
	b, err := NewHTTPSink("127.0.0.1:0", storeB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	for agent := 0; agent < 3; agent++ {
		wg.Add(1)
		go func(agent int) {
			defer wg.Done()
			p, err := NewPushSink(PushOptions{
				URL:          "http://" + b.Addr() + "/ingest",
				FlushSamples: 8,
				RetryBase:    time.Millisecond,
				Source:       fmt.Sprintf("node%d", agent),
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				_ = p.Write(Batch{Collector: "perfgroup", Time: float64(i), Samples: []Sample{
					{Metric: "bw", Scope: ScopeNode, ID: 0, Time: float64(i), Value: float64(agent*1000 + i)},
				}})
			}
			if err := p.Close(); err != nil {
				t.Error(err)
			}
		}(agent)
	}
	wg.Wait()
	for agent := 0; agent < 3; agent++ {
		k := Key{Source: fmt.Sprintf("node%d", agent), Metric: "bw", Scope: ScopeNode, ID: 0}
		pts := storeB.Window(k, 0, -1)
		if len(pts) != 50 {
			t.Errorf("agent %d series has %d points, want 50", agent, len(pts))
			continue
		}
		if pts[49].Value != float64(agent*1000+49) {
			t.Errorf("agent %d newest value = %v, want %d", agent, pts[49].Value, agent*1000+49)
		}
	}
	// The sourceless series must not exist: nothing collapsed.
	if pts := storeB.Window(Key{Metric: "bw", Scope: ScopeNode, ID: 0}, 0, -1); pts != nil {
		t.Errorf("sourceless series has %d points, want none", len(pts))
	}
}

// TestPushSpecSetsDefaultSource pins that CLI-built push sinks carry an
// agent identity, so the README's two-agents-one-receiver walkthrough
// keeps the series separate.
func TestPushSpecSetsDefaultSource(t *testing.T) {
	s, err := ParseSink(context.Background(), "push:127.0.0.1:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if src := s.(*PushSink).opts.Source; src == "" {
		t.Error("ParseSink(push:...) built a sink with no Source identity")
	}
}
