// Package features implements likwid-features: viewing and toggling the
// hardware prefetchers and reporting switchable processor features, all
// through the IA32_MISC_ENABLE model-specific register (§II-D).
//
// As on real silicon, the prefetcher control bits are *disable* bits: a set
// bit switches the unit off.  The feature report mirrors the paper's
// listing for a Core 2 processor.
package features

import (
	"fmt"
	"strings"

	"likwid/internal/hwdef"
	"likwid/internal/msr"
)

// kind classifies how a feature renders and whether it can be toggled.
type kind int

const (
	kindToggle    kind = iota // prefetchers: -e/-u switchable
	kindStatus                // enabled/disabled, read-only here
	kindSupported             // prints supported/not supported
)

// feature is one row of the report.
type feature struct {
	display  string // human name in the listing
	name     string // likwid-features argument name (toggles only)
	bit      uint   // IA32_MISC_ENABLE bit
	inverted bool   // set bit means disabled
	kind     kind
}

// core2Features is the feature inventory of the paper's listing, in its
// exact order.
var core2Features = []feature{
	{display: "Fast-Strings", bit: 0, kind: kindStatus},
	{display: "Automatic Thermal Control", bit: 3, kind: kindStatus},
	{display: "Performance monitoring", bit: 7, kind: kindStatus},
	{display: "Hardware Prefetcher", name: "HW_PREFETCHER", bit: hwdef.BitHWPrefetcher, inverted: true, kind: kindToggle},
	{display: "Branch Trace Storage", bit: 11, inverted: true, kind: kindSupported},
	{display: "PEBS", bit: 12, inverted: true, kind: kindSupported},
	{display: "Intel Enhanced SpeedStep", bit: 16, kind: kindStatus},
	{display: "MONITOR/MWAIT", bit: 18, kind: kindSupported},
	{display: "Adjacent Cache Line Prefetch", name: "CL_PREFETCHER", bit: hwdef.BitCLPrefetcher, inverted: true, kind: kindToggle},
	{display: "Limit CPUID Maxval", bit: 22, kind: kindStatus},
	{display: "XD Bit Disable", bit: 34, inverted: true, kind: kindStatus},
	{display: "DCU Prefetcher", name: "DCU_PREFETCHER", bit: hwdef.BitDCUPrefetcher, inverted: true, kind: kindToggle},
	{display: "Intel Dynamic Acceleration", bit: 38, kind: kindStatus},
	{display: "IP Prefetcher", name: "IP_PREFETCHER", bit: hwdef.BitIPPrefetcher, inverted: true, kind: kindToggle},
}

// Tool is a likwid-features session on one core of one machine.
type Tool struct {
	arch *hwdef.Arch
	dev  *msr.Device
	cpu  int
}

// New opens the feature interface of one core.  Like the original tool,
// which "currently only works for Intel Core 2 processors", it requires an
// Intel part with an IA32_MISC_ENABLE register; unlike the original it
// degrades gracefully to any modeled Intel architecture.
func New(space *msr.Space, a *hwdef.Arch, cpu int) (*Tool, error) {
	if a.Vendor != hwdef.Intel {
		return nil, fmt.Errorf("features: %s is not an Intel processor (IA32_MISC_ENABLE unavailable)", a.Name)
	}
	dev, err := space.Open(cpu)
	if err != nil {
		return nil, err
	}
	if _, err := dev.Read(msr.IA32MiscEnable); err != nil {
		return nil, fmt.Errorf("features: %s: %w", a.Name, err)
	}
	return &Tool{arch: a, dev: dev, cpu: cpu}, nil
}

// State is one feature's reported state.
type State struct {
	Display    string
	Name       string // toggle name, "" for status rows
	Togglable  bool
	Enabled    bool
	Supported  bool // meaningful for kindSupported rows
	StatusText string
}

// availableToggles lists the prefetcher toggle names of the architecture.
func (t *Tool) availableToggles() map[string]bool {
	out := map[string]bool{}
	for _, p := range t.arch.Prefetchers {
		out[p.Name] = true
	}
	return out
}

// List reports every feature's state in listing order.
func (t *Tool) List() ([]State, error) {
	v, err := t.dev.Read(msr.IA32MiscEnable)
	if err != nil {
		return nil, err
	}
	toggles := t.availableToggles()
	var out []State
	for _, f := range core2Features {
		if f.kind == kindToggle && !toggles[f.name] {
			continue // this architecture lacks the unit
		}
		bitSet := v&(1<<f.bit) != 0
		on := bitSet != f.inverted // inverted: clear bit means enabled
		st := State{
			Display:   f.display,
			Name:      f.name,
			Togglable: f.kind == kindToggle,
			Enabled:   on,
			Supported: on,
		}
		if f.kind == kindSupported {
			if on {
				st.StatusText = "supported"
			} else {
				st.StatusText = "not supported"
			}
		} else if on {
			st.StatusText = "enabled"
		} else {
			st.StatusText = "disabled"
		}
		out = append(out, st)
	}
	return out, nil
}

// lookupToggle finds a togglable feature by its argument name.
func (t *Tool) lookupToggle(name string) (feature, error) {
	if !t.availableToggles()[name] {
		return feature{}, fmt.Errorf("features: %s has no togglable feature %q (available: %s)",
			t.arch.Name, name, strings.Join(t.ToggleNames(), ", "))
	}
	for _, f := range core2Features {
		if f.kind == kindToggle && f.name == name {
			return f, nil
		}
	}
	return feature{}, fmt.Errorf("features: unknown feature %q", name)
}

// ToggleNames lists the feature names accepted by Enable/Disable.
func (t *Tool) ToggleNames() []string {
	var names []string
	toggles := t.availableToggles()
	for _, f := range core2Features {
		if f.kind == kindToggle && toggles[f.name] {
			names = append(names, f.name)
		}
	}
	return names
}

// Enable switches a prefetcher on (likwid-features -e NAME).
func (t *Tool) Enable(name string) error {
	f, err := t.lookupToggle(name)
	if err != nil {
		return err
	}
	// Prefetcher bits are disable bits: enabling clears the bit.
	return t.dev.ClearBits(msr.IA32MiscEnable, 1<<f.bit)
}

// Disable switches a prefetcher off (likwid-features -u NAME).
func (t *Tool) Disable(name string) error {
	f, err := t.lookupToggle(name)
	if err != nil {
		return err
	}
	return t.dev.SetBits(msr.IA32MiscEnable, 1<<f.bit)
}

// Enabled reports whether a togglable feature is currently on.
func (t *Tool) Enabled(name string) (bool, error) {
	f, err := t.lookupToggle(name)
	if err != nil {
		return false, err
	}
	v, err := t.dev.Read(msr.IA32MiscEnable)
	if err != nil {
		return false, err
	}
	return (v&(1<<f.bit) != 0) != f.inverted, nil
}

// Render prints the listing of §II-D:
//
//	-------------------------------------------------------------
//	CPU name:       Intel Core 2 65nm processor
//	CPU core id:    0
//	-------------------------------------------------------------
//	Fast-Strings: enabled
//	...
func (t *Tool) Render() (string, error) {
	states, err := t.List()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	rule := strings.Repeat("-", 61)
	b.WriteString(rule + "\n")
	fmt.Fprintf(&b, "CPU name:\t%s\n", t.arch.ModelName)
	fmt.Fprintf(&b, "CPU core id:\t%d\n", t.cpu)
	b.WriteString(rule + "\n")
	for _, s := range states {
		fmt.Fprintf(&b, "%s: %s\n", s.Display, s.StatusText)
	}
	b.WriteString(rule + "\n")
	return b.String(), nil
}
