// likwid-agent is the continuous node-monitoring daemon grown out of the
// paper's one-shot tools, after the LIKWID Monitoring Stack: collectors
// wrap the suite (perfctr groups, topology, features, memory system),
// a scheduler samples them on an interval, samples are aggregated per
// topology domain into a ring-buffer time-series store, and batches fan
// out asynchronously to sinks.
//
// Usage:
//
//	likwid-agent [options]
//
//	-a arch        node architecture (default westmereEP)
//	-c CPULIST     processors to monitor, e.g. 0-7 (default: all)
//	-g GROUP       perfctr event group to sample (default MEM_DP)
//	-i DURATION    sampling interval (default 500ms)
//	-duration D    stop after D of wall time (default: run until SIGINT)
//	-sink SPEC     repeatable: stdout | csv:PATH | jsonl:PATH | http:ADDR
//	-collectors L  comma-separated collector set (default all registered)
//	-load SPEC     synthetic background load: stream[:NTASKS] | idle
//	-buffer N      sink queue depth (drop-and-count beyond it, default 64)
//	-retain N      ring-buffer points kept per series (default 1024)
//	-raw           also emit per-event rates next to derived metrics
//
// Example:
//
//	likwid-agent -g MEM_DP -i 500ms -sink csv:out.csv -sink http::8090
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"likwid"
	"likwid/internal/machine"
	"likwid/internal/monitor"
	"likwid/internal/pin"
	"likwid/internal/topology"
)

// sinkSpecs collects repeated -sink flags.
type sinkSpecs []string

func (s *sinkSpecs) String() string { return strings.Join(*s, ",") }
func (s *sinkSpecs) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	arch := flag.String("a", "westmereEP", "node architecture")
	cpuList := flag.String("c", "", "processors to monitor (default: all)")
	group := flag.String("g", "MEM_DP", "perfctr event group to sample")
	interval := flag.Duration("i", 500*time.Millisecond, "sampling interval")
	duration := flag.Duration("duration", 0, "stop after this wall time (0 = until SIGINT)")
	collectorSet := flag.String("collectors", "", "comma-separated collectors (default: all registered)")
	loadSpec := flag.String("load", "stream", "background load: stream[:NTASKS] | idle")
	buffer := flag.Int("buffer", 64, "sink queue depth")
	retain := flag.Int("retain", 1024, "ring-buffer points per series")
	raw := flag.Bool("raw", false, "emit per-event rates too")
	var sinks sinkSpecs
	flag.Var(&sinks, "sink", "sink spec (repeatable): stdout | csv:PATH | jsonl:PATH | http:ADDR")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "likwid-agent:", err)
		os.Exit(1)
	}

	node, err := likwid.Open(*arch)
	if err != nil {
		fail(err)
	}
	// A typo'd group is a configuration error, not a degraded collector:
	// fail fast instead of monitoring a node with no counters armed.
	if _, err := node.Group(*group); err != nil {
		fail(err)
	}
	var cpus []int
	if *cpuList != "" {
		if cpus, err = pin.ParseCPUList(*cpuList); err != nil {
			fail(err)
		}
	}

	cfg := monitor.Config{
		Machine:   node.M,
		MachineMu: new(sync.Mutex),
		CPUs:      cpus,
		Group:     *group,
		Interval:  *interval,
		RawEvents: *raw,
	}
	loadCPUs := cpus
	if len(loadCPUs) == 0 {
		loadCPUs = make([]int, node.M.OS.NumCPUs())
		for i := range loadCPUs {
			loadCPUs[i] = i
		}
	}
	load, err := newLoadDriver(node.M, loadCPUs, *loadSpec)
	if err != nil {
		fail(err)
	}
	cfg.Advance = load.advance

	names := monitor.DefaultRegistry.Names()
	if *collectorSet != "" {
		names = strings.Split(*collectorSet, ",")
	}
	store := monitor.NewStore(*retain)
	info, err := topology.Probe(node.M.CPUs, node.M.Arch.ClockMHz)
	if err != nil {
		fail(err)
	}
	agg := monitor.NewAggregator(info, cpus)

	if len(sinks) == 0 {
		sinks = sinkSpecs{"stdout"}
	}
	built := make([]monitor.Sink, 0, len(sinks))
	for _, spec := range sinks {
		s, err := monitor.ParseSink(spec, store)
		if err != nil {
			fail(err)
		}
		if h, ok := s.(*monitor.HTTPSink); ok {
			fmt.Fprintf(os.Stderr, "likwid-agent: http sink listening on %s\n", h.Addr())
		}
		built = append(built, s)
	}
	dispatcher := monitor.NewDispatcher(*buffer, built...)

	sched := monitor.NewScheduler(monitor.SchedulerOptions{
		Store:      store,
		Aggregator: agg,
		Dispatcher: dispatcher,
		OnError: func(name string, err error) {
			fmt.Fprintf(os.Stderr, "likwid-agent: collector %s: %v (backing off)\n", name, err)
		},
	})
	var stops []func() error
	var active []monitor.Collector
	for _, name := range names {
		c, err := monitor.DefaultRegistry.Build(strings.TrimSpace(name), cfg)
		if err != nil {
			// A collector that cannot come up on this node (e.g. features
			// on AMD) is skipped, not fatal: monitoring degrades, it does
			// not die.
			fmt.Fprintf(os.Stderr, "likwid-agent: skipping collector %s: %v\n", name, err)
			continue
		}
		sched.Add(c)
		if s, ok := c.(interface{ Stop() error }); ok {
			stops = append(stops, s.Stop)
		}
		active = append(active, c)
	}
	if len(active) == 0 {
		fail(fmt.Errorf("no collector could be built; nothing to monitor"))
	}

	ctx, cancel := context.WithCancel(context.Background())
	if *duration > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), *duration)
	}
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
	}()

	fmt.Fprintf(os.Stderr, "likwid-agent: monitoring %s, group %s, interval %s\n",
		node.String(), *group, *interval)
	sched.Run(ctx)

	for _, stop := range stops {
		_ = stop()
	}
	if err := dispatcher.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "likwid-agent: sink close: %v\n", err)
	}

	for _, st := range sched.Stats() {
		fmt.Fprintf(os.Stderr, "likwid-agent: %-20s %4d batches, %5d samples, %d errors\n",
			st.Name, st.Batches, st.Samples, st.Errors)
	}
	if d := dispatcher.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "likwid-agent: %d batches dropped at the sink queue\n", d)
	}
}

// loadDriver advances simulated machine time between counter samples.  The
// "stream" mode keeps streaming tasks busy so the monitored counters move;
// it adapts the per-tick element count so one tick of work costs roughly
// one interval of simulated time.
type loadDriver struct {
	m           *machine.Machine
	works       []*machine.ThreadWork
	elemsPerSec float64
}

func newLoadDriver(m *machine.Machine, cpus []int, spec string) (*loadDriver, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	d := &loadDriver{m: m, elemsPerSec: 1e8}
	switch kind {
	case "idle":
		return d, nil
	case "stream":
		nTasks := 2 * m.Arch.Sockets
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d", &nTasks); err != nil || nTasks < 1 {
				return nil, fmt.Errorf("bad load task count %q", arg)
			}
		}
		if nTasks > len(cpus) {
			nTasks = len(cpus)
		}
		// Spread tasks round-robin over sockets so every controller sees
		// traffic and the socket roll-ups have something to show.
		bySocket := map[int][]int{}
		var sockets []int
		for _, cpu := range cpus {
			s := m.SocketOf(cpu)
			if _, ok := bySocket[s]; !ok {
				sockets = append(sockets, s)
			}
			bySocket[s] = append(bySocket[s], cpu)
		}
		perElem := machine.PerElem{
			Cycles: 1.0,
			Counts: machine.Counts{
				machine.EvInstr:         3,
				machine.EvFlopsPackedDP: 1,
				machine.EvLoads:         2,
				machine.EvStores:        1,
			},
			MemReadBytes: 16, MemWriteBytes: 8,
			Streams: 3, Vector: true,
		}
		for i := 0; i < nTasks; i++ {
			socket := sockets[i%len(sockets)]
			socketCPUs := bySocket[socket]
			cpu := socketCPUs[(i/len(sockets))%len(socketCPUs)]
			task := m.OS.Spawn(fmt.Sprintf("agent-load-%d", i), nil)
			if err := m.OS.Pin(task, cpu); err != nil {
				return nil, err
			}
			d.works = append(d.works, &machine.ThreadWork{Task: task, PerElem: perElem})
		}
		return d, nil
	default:
		return nil, fmt.Errorf("unknown load spec %q (stream[:NTASKS], idle)", spec)
	}
}

// advance moves simulated time forward by roughly dt seconds.
func (d *loadDriver) advance(dt float64) {
	if len(d.works) == 0 {
		d.m.RunIdle(dt, 0)
		return
	}
	elems := d.elemsPerSec * dt
	for _, w := range d.works {
		w.Elems = elems
		w.Done = 0
		w.FinishTime = 0
	}
	elapsed := d.m.RunPhase(d.works, 0)
	if elapsed < dt {
		d.m.RunIdle(dt-elapsed, 0)
	}
	// Calibrate toward one interval of simulated work per tick.
	if elapsed > 0 {
		factor := dt / elapsed
		if factor < 0.25 {
			factor = 0.25
		}
		if factor > 4 {
			factor = 4
		}
		d.elemsPerSec *= factor
	}
}
