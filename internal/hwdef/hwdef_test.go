package hwdef

import (
	"testing"
	"testing/quick"
)

func TestRegistryAllValid(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("expected at least 7 registered architectures, got %d: %v", len(names), names)
	}
	for _, n := range names {
		a, err := Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("arch %s invalid: %v", n, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("pdp11"); err == nil {
		t.Fatal("expected error for unknown architecture")
	}
}

func TestWestmereGeometry(t *testing.T) {
	a := WestmereEP
	if got := a.HWThreads(); got != 24 {
		t.Errorf("HWThreads = %d, want 24", got)
	}
	if got := a.Cores(); got != 12 {
		t.Errorf("Cores = %d, want 12", got)
	}
	want := []int{0, 1, 2, 8, 9, 10}
	for i, id := range a.PhysCoreIDs {
		if id != want[i] {
			t.Errorf("PhysCoreIDs[%d] = %d, want %d", i, id, want[i])
		}
	}
	l3, ok := a.CacheAt(3)
	if !ok {
		t.Fatal("Westmere must have an L3")
	}
	if l3.SizeKB != 12288 || l3.SharedBy != 12 || l3.Inclusive {
		t.Errorf("L3 = %+v, want 12 MB non-inclusive shared by 12", l3)
	}
}

func TestCacheGeometryConsistency(t *testing.T) {
	for _, n := range Names() {
		a, _ := Lookup(n)
		for _, c := range a.Caches {
			if err := c.Validate(); err != nil {
				t.Errorf("%s: %v", n, err)
			}
		}
	}
}

func TestEventTablesHaveMandatoryEvents(t *testing.T) {
	// The derived-metric engine depends on these two names existing on
	// every architecture.
	for _, n := range Names() {
		a, _ := Lookup(n)
		for _, name := range []string{"INSTR_RETIRED_ANY", "CPU_CLK_UNHALTED_CORE"} {
			if _, err := a.EventByName(name); err != nil {
				t.Errorf("%s: %v", n, err)
			}
		}
	}
}

func TestUncoreEventsOnlyWithUncoreCounters(t *testing.T) {
	for _, n := range Names() {
		a, _ := Lookup(n)
		for name, ev := range a.Events {
			if ev.Domain == DomainUncore && a.NumUncore == 0 {
				t.Errorf("%s: uncore event %s but no uncore counters", n, name)
			}
		}
	}
}

func TestFixedEventsOnlyOnIntel(t *testing.T) {
	for _, n := range Names() {
		a, _ := Lookup(n)
		if a.Vendor == AMD && a.HasFixedCtr {
			t.Errorf("%s: AMD arch with fixed counters", n)
		}
	}
}

func TestLastLevelCache(t *testing.T) {
	llc, ok := NehalemEP.LastLevelCache()
	if !ok || llc.Level != 3 {
		t.Fatalf("Nehalem LLC = %+v ok=%v, want level 3", llc, ok)
	}
	llc, ok = Core2Quad.LastLevelCache()
	if !ok || llc.Level != 2 {
		t.Fatalf("Core2 LLC = %+v ok=%v, want level 2", llc, ok)
	}
}

func TestEventEncodesAs(t *testing.T) {
	ev := Event{Code: 0xCA, Umask: 0x04}
	if got := ev.EncodesAs(); got != 0x04CA {
		t.Errorf("EncodesAs = %#x, want 0x04CA", got)
	}
}

func TestEncodesAsProperty(t *testing.T) {
	f := func(code uint16, umask uint8) bool {
		ev := Event{Code: code, Umask: umask}
		enc := ev.EncodesAs()
		return enc&0xFF == code&0xFF && enc>>8 == uint16(umask)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVendorString(t *testing.T) {
	if Intel.String() != "GenuineIntel" || AMD.String() != "AuthenticAMD" {
		t.Error("vendor strings must match CPUID identification strings")
	}
	if len(Intel.String()) != 12 || len(AMD.String()) != 12 {
		t.Error("CPUID vendor strings must be exactly 12 bytes")
	}
}

func TestPerfModelsCalibrated(t *testing.T) {
	for _, n := range Names() {
		a, _ := Lookup(n)
		p := a.Perf
		if p.CoreTriadBW > p.SocketMemBW {
			t.Errorf("%s: single core faster than socket bus", n)
		}
		if p.RemoteFactor <= 0 || p.RemoteFactor > 1 {
			t.Errorf("%s: RemoteFactor %v out of (0,1]", n, p.RemoteFactor)
		}
		if p.SMTVectorGain < 1 || p.SMTScalarGain < p.SMTVectorGain {
			t.Errorf("%s: SMT gains implausible: vector %v scalar %v", n, p.SMTVectorGain, p.SMTScalarGain)
		}
	}
}
