// Package cli holds the shared command-line plumbing of the tool suite:
// the bordered ASCII table renderer used by likwid-perfCtr's reports and
// small argument-parsing helpers shared across the cmd/ binaries.
package cli

import (
	"fmt"
	"strings"
)

// Table renders the +----+----+ bordered tables of the paper's listings.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	sep := func() {
		for _, w := range widths {
			b.WriteString("+" + strings.Repeat("-", w+2))
		}
		b.WriteString("+\n")
	}
	line := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", w, cell)
		}
		b.WriteString("|\n")
	}
	sep()
	line(t.header)
	sep()
	for _, row := range t.rows {
		line(row)
	}
	sep()
	return b.String()
}

// FormatCount renders an event count the way the tool does: integers below
// a million, scientific notation above (matching the paper's listing where
// small counts print exact and large ones as 1.88024e+07).
func FormatCount(v float64) string {
	if v == float64(int64(v)) && v < 1e6 && v > -1e6 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// FormatMetric renders a derived metric value.
func FormatMetric(v float64) string {
	return fmt.Sprintf("%.6g", v)
}

// Rule is the horizontal rule the tools print between report sections.
const Rule = "-------------------------------------------------------------"
