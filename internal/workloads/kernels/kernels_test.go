package kernels

import (
	"testing"

	"likwid/internal/cache"
	"likwid/internal/hwdef"
)

func TestByName(t *testing.T) {
	k, err := ByName("triad")
	if err != nil || k.LoadArrays != 2 || k.StoreArrays != 1 {
		t.Fatalf("triad = %+v, %v", k, err)
	}
	if _, err := ByName("warp"); err == nil {
		t.Error("unknown kernel must fail")
	}
}

func TestBytesPerElem(t *testing.T) {
	for name, want := range map[string]int{"load": 8, "copy": 16, "triad": 24} {
		k, _ := ByName(name)
		if got := k.BytesPerElem(); got != want {
			t.Errorf("%s bytes/elem = %d, want %d", name, got, want)
		}
	}
}

// TestBandwidthMapShape: the core property of the bandwidth map — measured
// bandwidth falls as the working set spills each cache level.
func TestBandwidthMapShape(t *testing.T) {
	a := hwdef.Core2Quad // 32 kB L1, 6 MB L2
	k, _ := ByName("load")
	inL1, err := Run(a, k, 16<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	inL2, err := Run(a, k, 256<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := Run(a, k, 24<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(inL1.BandwidthMBs > inL2.BandwidthMBs && inL2.BandwidthMBs > inMem.BandwidthMBs) {
		t.Fatalf("bandwidth map not monotone: L1 %v, L2 %v, mem %v",
			inL1.BandwidthMBs, inL2.BandwidthMBs, inMem.BandwidthMBs)
	}
	// In-L1 working sets hit essentially always after warm-up.
	if inL1.L1HitRatio < 0.99 {
		t.Errorf("L1-resident hit ratio = %v, want ≈ 1", inL1.L1HitRatio)
	}
	if inL1.MemLines != 0 {
		t.Errorf("L1-resident run touched memory: %d lines", inL1.MemLines)
	}
}

// TestPrefetchersRaiseStreamingBandwidth: the likwid-features case — with
// prefetch units disabled, out-of-cache streaming bandwidth drops.
func TestPrefetchersRaiseStreamingBandwidth(t *testing.T) {
	a := hwdef.Core2Quad
	k, _ := ByName("load")
	off := func() bool { return false }
	gatesOff := cache.PrefetchGates{
		"HW_PREFETCHER": off, "CL_PREFETCHER": off,
		"DCU_PREFETCHER": off, "IP_PREFETCHER": off,
	}
	ws := 24 << 20
	with, err := Run(a, k, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(a, k, ws, gatesOff)
	if err != nil {
		t.Fatal(err)
	}
	if with.BandwidthMBs <= without.BandwidthMBs*1.2 {
		t.Errorf("prefetchers gained only %v -> %v MB/s; expect >20%% on streaming",
			without.BandwidthMBs, with.BandwidthMBs)
	}
}

// TestNTStoreSkipsReadForOwnership: store vs store_nt — the NT variant must
// not read the lines it overwrites.
func TestNTStoreSkipsReadForOwnership(t *testing.T) {
	a := hwdef.NehalemEP
	st, _ := ByName("store")
	nt, _ := ByName("store_nt")
	ws := 32 << 20
	regular, err := Run(a, st, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := Run(a, nt, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Regular stores write-allocate: roughly 2 lines moved per line
	// written.  NT stores: 1.
	if streaming.MemLines >= regular.MemLines {
		t.Errorf("NT store moved %d lines, regular %d; write allocate not elided",
			streaming.MemLines, regular.MemLines)
	}
}

func TestSweepAndDefaultSizes(t *testing.T) {
	a := hwdef.Core2Quad
	sizes := DefaultSizes(a)
	if len(sizes) < 4 {
		t.Fatalf("default sizes too few: %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not ascending: %v", sizes)
		}
	}
	k, _ := ByName("copy")
	// Use a truncated size list to keep the test fast.
	pts, err := Sweep(a, k, []int{16 << 10, 1 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].BandwidthMBs <= pts[1].BandwidthMBs {
		t.Errorf("copy sweep not monotone: %+v", pts)
	}
}

func TestRunValidation(t *testing.T) {
	a := hwdef.Core2Quad
	k, _ := ByName("load")
	if _, err := Run(a, k, 100, nil); err == nil {
		t.Error("tiny working set must fail")
	}
	if _, err := Run(a, Kernel{Name: "null"}, 1<<20, nil); err == nil {
		t.Error("kernel moving no data must fail")
	}
}
