package machine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"likwid/internal/msr"
)

// TestCounterConservationProperty: for arbitrary workloads the counters
// measure exactly what the workload generated — event delivery through the
// slicing, sharing and residual machinery must neither lose nor invent
// counts.
func TestCounterConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := newQuiet(t)
		nTasks := 1 + rng.Intn(4)
		var works []*ThreadWork
		expectInstr := map[int]float64{} // cpu -> expected instructions
		for i := 0; i < nTasks; i++ {
			cpu := rng.Intn(6) // distinct or shared cpus, both legal
			task := m.OS.Spawn("w", nil)
			if err := m.OS.Pin(task, cpu); err != nil {
				return false
			}
			elems := float64(1+rng.Intn(20)) * 1e5
			instrPerElem := 1 + rng.Float64()*5
			works = append(works, &ThreadWork{
				Task: task, Elems: elems,
				PerElem: PerElem{
					Cycles: 0.5 + rng.Float64()*3,
					Counts: Counts{EvInstr: instrPerElem},
					Vector: rng.Intn(2) == 0,
				},
			})
			expectInstr[cpu] += elems * instrPerElem
		}
		// Arm the fixed instruction counter on every cpu.
		for cpu := 0; cpu < 6; cpu++ {
			dev, _ := m.MSRs.Open(cpu)
			dev.Write(msr.IA32FixedCtrCtrl, 0x333)
			dev.Write(msr.IA32PerfGlobalCtl, uint64(0x7)<<32)
		}
		m.RunPhase(works, 0)
		for cpu, want := range expectInstr {
			dev, _ := m.MSRs.Open(cpu)
			got, _ := dev.Read(msr.IA32FixedCtr0)
			// Residual carrying must keep the error below one count per
			// counter.
			if math.Abs(float64(got)-want) > 1.0 {
				t.Logf("seed %d cpu %d: instr %d, want %v", seed, cpu, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func newQuiet(t *testing.T) *Machine {
	t.Helper()
	m, err := NewNamed("westmereEP", Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSocketTrafficConservationProperty: uncore memory-line counters equal
// the workload's traffic exactly, independent of which cores of the socket
// run the work.
func TestSocketTrafficConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := newQuiet(t)
		// Arm the socket-0 uncore read counter.
		ev, err := m.Arch.EventByName("UNC_QMC_NORMAL_READS_ANY")
		if err != nil {
			return false
		}
		dev, _ := m.MSRs.Open(0)
		dev.Write(msr.UncPerfEvtSel, msr.EvtselEncode(ev.Code, ev.Umask))
		dev.Write(msr.UncGlobalCtl, 1)

		var works []*ThreadWork
		var wantLines float64
		for i := 0; i < 1+rng.Intn(3); i++ {
			cpu := rng.Intn(6) // socket 0 cores only
			task := m.OS.Spawn("w", nil)
			if err := m.OS.Pin(task, cpu); err != nil {
				return false
			}
			elems := float64(1+rng.Intn(10)) * 1e5
			readBytes := float64(8 * (1 + rng.Intn(4)))
			works = append(works, &ThreadWork{
				Task: task, Elems: elems,
				PerElem: PerElem{
					Cycles: 1, MemReadBytes: readBytes, Streams: 3, Vector: true,
				},
			})
			wantLines += elems * readBytes / 64
		}
		m.RunPhase(works, 0)
		got, _ := dev.Read(msr.UncPMC)
		if math.Abs(float64(got)-wantLines) > 1.0 {
			t.Logf("seed %d: lines %d, want %v", seed, got, wantLines)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
