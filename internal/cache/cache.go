// Package cache implements a trace-driven, set-associative, write-back
// cache hierarchy simulator with togglable hardware prefetchers.
//
// The simulator backs the parts of the suite that need line-accurate
// behaviour: the likwid-bench microkernels (bandwidth map), the
// likwid-features case study (prefetchers on/off), and the cache unit and
// property tests.  The large case-study workloads (STREAM, Jacobi) use the
// analytic traffic model in internal/machine instead — simulating 500³
// grids line by line would dominate runtime without changing the counter
// arithmetic being validated.
//
// Prefetch units model the Intel Core 2 inventory that likwid-features
// toggles: the L2 streamer (HW_PREFETCHER), adjacent-line prefetch
// (CL_PREFETCHER), the L1 streaming prefetcher (DCU_PREFETCHER), and the
// instruction-pointer strided prefetcher (IP_PREFETCHER).  Each unit is
// gated by a callback so that flipping bits in IA32_MISC_ENABLE through the
// msr package takes effect immediately.
package cache

import (
	"fmt"
	"sync"
)

// Stats aggregates the per-level counters the event engine exposes.
type Stats struct {
	Accesses   uint64 // demand accesses (loads + stores)
	Hits       uint64 // demand hits
	Misses     uint64 // demand misses
	LinesIn    uint64 // lines allocated (demand fills + prefetch fills)
	LinesOut   uint64 // lines evicted (clean + dirty)
	DirtyOut   uint64 // dirty lines written back
	Prefetches uint64 // prefetch fills issued by this level's units
	NTStores   uint64 // non-temporal stores passed around the cache
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// Config is the geometry of one cache level.
type Config struct {
	Name          string // e.g. "L1D"
	Sets          int    // number of sets (power of two)
	Ways          int    // associativity
	LineSize      int    // bytes, power of two
	WriteAllocate bool   // allocate on store miss (regular stores)
	Inclusive     bool   // back-invalidate upper levels on eviction
}

// Validate rejects impossible geometry.  Set counts need not be powers of
// two (indexing is modulo): real last-level caches are often sliced into
// non-power-of-two set counts, e.g. the 12288-set Westmere EP L3.
func (c Config) Validate() error {
	if c.Sets <= 0 {
		return fmt.Errorf("cache %s: sets %d invalid", c.Name, c.Sets)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d invalid", c.Name, c.Ways)
	}
	return nil
}

// Level is one cache in the hierarchy.  Levels form a chain toward memory;
// a nil next level means accesses that miss go to main memory (tracked by
// the Memory sink).  A Level may be shared between hierarchies (e.g. a
// socket-wide L3); all methods take the level lock.
type Level struct {
	cfg     Config
	mu      sync.Mutex
	sets    [][]line // sets[s] ordered MRU first
	stats   Stats
	next    *Level
	mem     *Memory
	parents []*Level // upper levels, for inclusive back-invalidation

	prefetchers []prefetchUnit
}

// Memory is the sink below the last cache level, counting line transfers.
// Non-temporal stores pass through a write-combining buffer: consecutive
// stores into the same line merge into a single line transfer, as on real
// hardware.
type Memory struct {
	mu         sync.Mutex
	ReadLines  uint64
	WriteLines uint64
	wcOpen     bool
	wcLine     uint64
}

// Snapshot returns a copy of the memory traffic counters.
func (m *Memory) Snapshot() (reads, writes uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ReadLines, m.WriteLines
}

func (m *Memory) read() {
	m.mu.Lock()
	m.ReadLines++
	m.mu.Unlock()
}

func (m *Memory) write() {
	m.mu.Lock()
	m.WriteLines++
	m.mu.Unlock()
}

// writeNT records a non-temporal store to a line, merging consecutive
// stores to the same line in the write-combining buffer.
func (m *Memory) writeNT(lineAddr uint64) {
	m.mu.Lock()
	if m.wcOpen && m.wcLine == lineAddr {
		m.mu.Unlock()
		return
	}
	m.wcOpen = true
	m.wcLine = lineAddr
	m.WriteLines++
	m.mu.Unlock()
}

// NewLevel builds a cache level above `next` (nil for a memory-attached
// level) spilling to `mem` when next is nil.
func NewLevel(cfg Config, next *Level, mem *Memory) (*Level, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil && mem == nil {
		return nil, fmt.Errorf("cache %s: needs a next level or a memory sink", cfg.Name)
	}
	l := &Level{
		cfg:  cfg,
		sets: make([][]line, cfg.Sets),
		next: next,
		mem:  mem,
	}
	for i := range l.sets {
		l.sets[i] = make([]line, 0, cfg.Ways)
	}
	if next != nil {
		next.mu.Lock()
		next.parents = append(next.parents, l)
		next.mu.Unlock()
	}
	return l, nil
}

// Config returns the level's geometry.
func (l *Level) Config() Config { return l.cfg }

// Stats returns a snapshot of the level's counters.
func (l *Level) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// ResetStats zeroes the counters (the cache content stays warm).
func (l *Level) ResetStats() {
	l.mu.Lock()
	l.stats = Stats{}
	l.mu.Unlock()
}

func (l *Level) addr2set(addr uint64) (set int, tag uint64) {
	lineAddr := addr / uint64(l.cfg.LineSize)
	return int(lineAddr % uint64(l.cfg.Sets)), lineAddr / uint64(l.cfg.Sets)
}

// lookup probes for a line; on hit it moves the line to MRU position.
func (l *Level) lookup(set int, tag uint64, markDirty bool) bool {
	s := l.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			ln := s[i]
			if markDirty {
				ln.dirty = true
			}
			copy(s[1:i+1], s[0:i])
			s[0] = ln
			return true
		}
	}
	return false
}

// install places a line at MRU, evicting LRU if the set is full.
// The eviction cascades: a dirty victim is written to the next level (or
// memory), and an inclusive level back-invalidates its parents.
func (l *Level) install(set int, tag uint64, dirty bool) {
	s := l.sets[set]
	if len(s) == cap(s) {
		victim := s[len(s)-1]
		s = s[:len(s)-1]
		if victim.valid {
			l.stats.LinesOut++
			if victim.dirty {
				l.stats.DirtyOut++
				l.writeBelow(victim.tag*uint64(l.cfg.Sets) + uint64(set))
			}
			if l.cfg.Inclusive {
				lineAddr := victim.tag*uint64(l.cfg.Sets) + uint64(set)
				for _, p := range l.parents {
					p.invalidate(lineAddr * uint64(l.cfg.LineSize))
				}
			}
		}
	}
	s = append(s, line{})
	copy(s[1:], s[0:len(s)-1])
	s[0] = line{tag: tag, valid: true, dirty: dirty}
	l.sets[set] = s
	l.stats.LinesIn++
}

// writeBelow pushes a dirty victim line one level down.
func (l *Level) writeBelow(lineAddr uint64) {
	addr := lineAddr * uint64(l.cfg.LineSize)
	if l.next != nil {
		l.next.writeLine(addr)
		return
	}
	l.mem.write()
}

// writeLine handles a write-back arriving from an upper level: it marks the
// line dirty if present, otherwise forwards toward memory (non-allocating
// for victim traffic, as on real write-back hierarchies without victim
// caches).
func (l *Level) writeLine(addr uint64) {
	l.mu.Lock()
	set, tag := l.addr2set(addr)
	if l.lookup(set, tag, true) {
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	if l.next != nil {
		l.next.writeLine(addr)
		return
	}
	l.mem.write()
}

// invalidate removes a line (back-invalidation from an inclusive level
// below), cascading to this level's own parents.
func (l *Level) invalidate(addr uint64) {
	l.mu.Lock()
	set, tag := l.addr2set(addr)
	s := l.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			if s[i].dirty {
				// A dirty back-invalidated line must still reach memory.
				l.stats.DirtyOut++
				l.writeBelow(s[i].tag*uint64(l.cfg.Sets) + uint64(set))
			}
			s[i].valid = false
			l.stats.LinesOut++
			break
		}
	}
	parents := l.parents
	l.mu.Unlock()
	for _, p := range parents {
		p.invalidate(addr)
	}
}

// Access is one demand memory access.
type Access struct {
	Addr  uint64
	Size  int
	Write bool
	NT    bool   // non-temporal store: bypasses the hierarchy
	IP    uint64 // instruction address, consulted by the IP prefetcher
}

// Do runs one access through this level (and below on miss), touching every
// line the access spans.
func (l *Level) Do(a Access) {
	if a.Size <= 0 {
		a.Size = 1
	}
	first := a.Addr / uint64(l.cfg.LineSize)
	last := (a.Addr + uint64(a.Size) - 1) / uint64(l.cfg.LineSize)
	for lineAddr := first; lineAddr <= last; lineAddr++ {
		l.doLine(lineAddr*uint64(l.cfg.LineSize), a.Write, a.NT, a.IP)
	}
}

func (l *Level) doLine(addr uint64, write, nt bool, ip uint64) {
	if nt && write {
		// Non-temporal stores stream past every cache level to memory.
		l.mu.Lock()
		l.stats.NTStores++
		next := l.next
		l.mu.Unlock()
		if next != nil {
			next.doLine(addr, write, nt, ip)
			return
		}
		l.mem.writeNT(addr / uint64(l.cfg.LineSize))
		return
	}

	l.mu.Lock()
	l.stats.Accesses++
	set, tag := l.addr2set(addr)
	if l.lookup(set, tag, write) {
		l.stats.Hits++
		units := l.prefetchers
		l.mu.Unlock()
		for _, u := range units {
			u.onAccess(l, addr, ip, false)
		}
		return
	}
	l.stats.Misses++
	l.mu.Unlock()

	// Fill from below.  A store miss without write-allocate goes straight
	// past this level.
	if write && !l.cfg.WriteAllocate {
		if l.next != nil {
			l.next.doLine(addr, write, nt, ip)
			return
		}
		l.mem.write()
		return
	}
	l.fetchBelow(addr, ip)
	l.mu.Lock()
	l.install(set, tag, write)
	units := l.prefetchers
	l.mu.Unlock()
	for _, u := range units {
		u.onAccess(l, addr, ip, true)
	}
}

// fetchBelow reads the line from the next level or memory.
func (l *Level) fetchBelow(addr uint64, ip uint64) {
	if l.next != nil {
		l.next.doLine(addr, false, false, ip)
		return
	}
	l.mem.read()
}

// prefetchLine pulls a line into this level without counting a demand
// access.  Already-present lines are left untouched.
func (l *Level) prefetchLine(addr uint64) {
	l.mu.Lock()
	set, tag := l.addr2set(addr)
	if l.lookup(set, tag, false) {
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	l.fetchBelow(addr, 0)
	l.mu.Lock()
	l.install(set, tag, false)
	l.stats.Prefetches++
	l.mu.Unlock()
}
