package monitor

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"likwid/internal/telemetry"
)

// PushOptions configure a push sink.  Zero values take the defaults
// noted per field.
type PushOptions struct {
	// URL is the receiver's ingest endpoint
	// (e.g. http://collector:8090/ingest).  Required.
	URL string
	// FlushSamples triggers a POST once this many samples are pending
	// (default 64).  Close always flushes the remainder.
	FlushSamples int
	// MaxBuffered bounds the pending samples kept across failed pushes
	// (default 4096); beyond it the oldest are dropped and counted, so a
	// dead receiver costs history, never memory.
	MaxBuffered int
	// MaxAttempts is the number of POST tries per flush (default 3).
	MaxAttempts int
	// RetryBase is the first retry backoff, doubling per attempt
	// (default 100 ms).
	RetryBase time.Duration
	// Source identifies this agent at the receiver: when set, it is
	// carried as the per-sample "source" field of the v2 wire schema and
	// lands in Key.Source at the receiver, so several agents pushing the
	// same group do not collapse into one series.  Samples that already
	// carry their own Source (a receiver re-pushing a fleet store) keep
	// it; this option only labels sourceless samples.  Empty means
	// unlabelled (single-agent setups).
	Source string
	// Context bounds the retry backoff: when it is cancelled (agent
	// shutdown), an in-flight flush stops sleeping between attempts, so
	// Close against a dead receiver returns promptly instead of walking
	// the whole backoff ladder.  Nil means never cancelled.
	Context context.Context
	// Client defaults to an http.Client with a 10 s timeout.
	Client *http.Client
	// Now supplies the wall clock for the sent_at stamp on each buffered
	// record (default time.Now).  Tests pin it; returning the zero time
	// (or time.Unix(0, 0)) disables stamping entirely, keeping the wire
	// bytes identical to the pre-sent_at format.
	Now func() time.Time
	// Logger receives flush-failure and drop warnings; nil stays silent
	// (counters only).
	Logger *slog.Logger
	// Format selects the wire encoding: WireJSON (the default) is the
	// v1–v3 gzipped JSON-lines schema, WireV4 the binary columnar batch
	// format.  v4 needs a receiver that understands its Content-Type
	// (this suite's, of any version shipping decodeV4) — upgrade
	// receivers before agents.
	Format WireFormat
}

// WireFormat selects a push sink's batch encoding.
type WireFormat int

const (
	// WireJSON is the self-describing v1–v3 JSON-lines schema, gzipped.
	WireJSON WireFormat = iota
	// WireV4 is the binary columnar batch format: per-series column
	// groups, delta-of-delta timestamps, Gorilla XOR values.
	WireV4
)

func (o PushOptions) withDefaults() PushOptions {
	if o.FlushSamples <= 0 {
		o.FlushSamples = 64
	}
	if o.MaxBuffered <= 0 {
		o.MaxBuffered = 4096
	}
	if o.MaxBuffered < o.FlushSamples {
		o.MaxBuffered = o.FlushSamples
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// PushSink ships batches to a remote receiver — the distributed half of
// the monitoring stack (Röhl et al., arXiv:1708.01476): every node agent
// pushes, one receiver aggregates.  Samples are encoded as JSON lines
// (the jsonl sink's exact record shape), gzipped, and POSTed to the
// receiver's /ingest endpoint with bounded retry and bounded buffering.
// Like every sink it runs on the dispatcher goroutine, so a slow
// receiver delays other sinks at most MaxAttempts backoffs per flush;
// the sampling path itself is protected by the dispatcher's
// drop-and-count queue.
type PushSink struct {
	opts    PushOptions
	pending []jsonSample

	sent    atomic.Uint64 // samples acknowledged by the receiver
	pushes  atomic.Uint64 // successful POSTs
	dropped atomic.Uint64 // samples evicted from the pending buffer
	retries atomic.Uint64 // failed POST attempts

	// Telemetry instruments, resolved once by Instrument (nil until
	// then; hot paths nil-check).  Instrument must run before the sink
	// is handed to a dispatcher — wiring time, like everything else.
	tBatch   *telemetry.Histogram // samples per Write
	tBytes   map[string]*telemetry.Counter
	tPost    *telemetry.Histogram // POST round-trip seconds, per attempt
	tPending *telemetry.Gauge     // pending-buffer occupancy
}

// NewPushSink creates a push sink; it does not contact the receiver
// until the first flush, so agents come up even when the collector is
// still down.
func NewPushSink(opts PushOptions) (*PushSink, error) {
	if strings.TrimSpace(opts.URL) == "" {
		return nil, fmt.Errorf("monitor: push sink needs a receiver URL")
	}
	return &PushSink{opts: opts.withDefaults()}, nil
}

// Name implements Sink.
func (p *PushSink) Name() string { return "push" }

// Sent counts samples acknowledged by the receiver.
func (p *PushSink) Sent() uint64 { return p.sent.Load() }

// Pushes counts successful POSTs.
func (p *PushSink) Pushes() uint64 { return p.pushes.Load() }

// Dropped counts samples evicted from the pending buffer while the
// receiver was unreachable.
func (p *PushSink) Dropped() uint64 { return p.dropped.Load() }

// Retries counts failed POST attempts.
func (p *PushSink) Retries() uint64 { return p.retries.Load() }

// SetLogger routes flush-failure and drop warnings; nil (the default)
// stays silent.  Wiring time only: call it before the sink is handed to
// a dispatcher, like Instrument.
func (p *PushSink) SetLogger(log *slog.Logger) { p.opts.Logger = log }

// Instrument registers the push sink's self-metrics on reg.  Call it at
// wiring time, before the sink receives its first Write.
func (p *PushSink) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("likwid_push_sent_total", func() float64 { return float64(p.sent.Load()) })
	reg.CounterFunc("likwid_push_pushes_total", func() float64 { return float64(p.pushes.Load()) })
	reg.CounterFunc("likwid_push_dropped_total", func() float64 { return float64(p.dropped.Load()) })
	reg.CounterFunc("likwid_push_retries_total", func() float64 { return float64(p.retries.Load()) })
	p.tBatch = reg.Histogram("likwid_push_batch_samples", telemetry.SizeBuckets)
	p.tBytes = map[string]*telemetry.Counter{
		"raw":  reg.Counter("likwid_push_bytes_total", "stage", "raw"),
		"gzip": reg.Counter("likwid_push_bytes_total", "stage", "gzip"),
	}
	p.tPost = reg.Histogram("likwid_push_post_seconds", telemetry.DurationBuckets)
	p.tPending = reg.Gauge("likwid_push_pending")
}

// sentAtStamp converts the wall clock to the wire's sent_at Unix
// seconds.  The zero time and the epoch both yield 0 — omitempty drops
// the field, so test clocks pinned at time.Unix(0, 0) reproduce the
// pre-sent_at wire bytes exactly.
func sentAtStamp(now time.Time) float64 {
	if now.IsZero() {
		return 0
	}
	return float64(now.UnixNano()) / 1e9
}

// Write buffers the batch and flushes once FlushSamples are pending.  A
// flush that exhausts its attempts returns the error but keeps the
// samples buffered (bounded by MaxBuffered) for the next flush.
func (p *PushSink) Write(b Batch) error {
	p.Buffer(b)
	if len(p.pending) < p.opts.FlushSamples {
		return nil
	}
	return p.flush()
}

// Buffer enqueues the batch without attempting a flush — Write minus the
// POST.  The cluster layer uses it to keep feeding a target that is known
// to be down (mirror mode): samples accumulate in the bounded pending
// buffer (oldest dropped and counted past MaxBuffered) and ship when the
// target recovers, without paying a doomed POST per batch meanwhile.
func (p *PushSink) Buffer(b Batch) {
	if p.tBatch != nil {
		p.tBatch.Observe(float64(len(b.Samples)))
	}
	// sent_at is stamped at enqueue time, not POST time: the receiver's
	// wire-latency histogram then covers the pending-buffer wait too, so
	// a backed-up push sink is visible end to end, not just its last hop.
	sentAt := sentAtStamp(p.opts.Now())
	// A batch's samples almost always share one interned label set:
	// reuse the previous sample's wire map (read-only downstream)
	// instead of rebuilding it per record.
	var (
		lastLs  Labels
		lastMap map[string]string
	)
	for _, sm := range b.Samples {
		source := sm.Source
		switch {
		case source == "":
			source = p.opts.Source
		case source == SelfSource && p.opts.Source != "":
			// Self-telemetry series are "self/..." locally; on the wire
			// they take the agent's push identity so two agents' self
			// series stay distinct at the receiver, exactly like their
			// hardware series.
			source = p.opts.Source
		}
		if sm.Labels != lastLs || lastMap == nil {
			lastLs, lastMap = sm.Labels, sm.Labels.Map()
		}
		p.pending = append(p.pending, jsonSample{
			Time:      sm.Time,
			SentAt:    sentAt,
			Collector: b.Collector,
			Source:    source,
			Labels:    lastMap,
			Metric:    sm.Metric,
			Scope:     sm.Scope.String(),
			ID:        sm.ID,
			Value:     sm.Value,
		})
	}
	if over := len(p.pending) - p.opts.MaxBuffered; over > 0 {
		p.pending = p.pending[over:]
		if p.dropped.Add(uint64(over)) == uint64(over) && p.opts.Logger != nil {
			p.opts.Logger.Warn("push buffer full, dropping oldest samples (counted, further drops not logged)",
				"url", p.opts.URL, "max_buffered", p.opts.MaxBuffered)
		}
	}
	if p.tPending != nil {
		p.tPending.Set(float64(len(p.pending)))
	}
}

// Pending reports the samples buffered and not yet acknowledged by the
// receiver.
func (p *PushSink) Pending() int { return len(p.pending) }

// URL returns the receiver ingest endpoint this sink pushes to.
func (p *PushSink) URL() string { return p.opts.URL }

// Flush pushes the pending buffer now, regardless of the FlushSamples
// threshold; a no-op when nothing is pending.  On failure the samples
// stay buffered, exactly like a threshold-triggered flush — the cluster
// drain path then decides whether to reroute them (TakePending) or give
// them up (Close).
func (p *PushSink) Flush() error {
	if len(p.pending) == 0 {
		return nil
	}
	return p.flush()
}

// TakePending removes and returns the buffered samples, decoded back
// from their wire form — the failover path: when this target is down
// and another is healthy, the cluster sink re-routes the stranded
// samples instead of waiting out the outage (or abandoning them on
// shutdown).  The per-record source resolved at Buffer time is kept, so
// re-writing the samples through another target's sink lands them on
// identical keys.  Like Write, it must only be called from the sink's
// driving goroutine.
func (p *PushSink) TakePending() []Sample {
	if len(p.pending) == 0 {
		return nil
	}
	out := make([]Sample, 0, len(p.pending))
	for _, js := range p.pending {
		scope, err := ParseScope(js.Scope)
		if err != nil {
			continue // unreachable: pending records were built from typed samples
		}
		ls, err := MakeLabels(js.Labels)
		if err != nil {
			continue // unreachable likewise: the maps came from interned sets
		}
		out = append(out, Sample{
			Source: js.Source,
			Metric: js.Metric,
			Scope:  scope,
			ID:     js.ID,
			Labels: ls,
			Time:   js.Time,
			Value:  js.Value,
		})
	}
	p.pending = p.pending[:0]
	if p.tPending != nil {
		p.tPending.Set(0)
	}
	return out
}

// Close flushes the remainder and reports the last push error.  Unlike a
// mid-run flush failure (which keeps the samples buffered for the next
// attempt), there is no next attempt after Close: samples still pending
// when the final flush fails are abandoned, so they are counted as drops
// and warned about once — fleet self-series then show the loss instead
// of silently under-reporting.
func (p *PushSink) Close() error {
	if len(p.pending) == 0 {
		return nil
	}
	err := p.flush()
	if n := len(p.pending); err != nil && n > 0 {
		p.pending = p.pending[:0]
		p.dropped.Add(uint64(n))
		if p.tPending != nil {
			p.tPending.Set(0)
		}
		if p.opts.Logger != nil {
			p.opts.Logger.Warn("push sink closed with unflushed samples, dropping them",
				"url", p.opts.URL, "dropped", n, "err", err)
		}
	}
	return err
}

// encodePending renders the pending samples in the wire format: one JSON
// object per line, the same record shape the jsonl file sink writes.
func (p *PushSink) encodePending() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, js := range p.pending {
		if err := enc.Encode(js); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

func (p *PushSink) flush() error {
	var (
		wire        []byte
		contentType string
		encoding    string
	)
	if p.opts.Format == WireV4 {
		// The binary columnar format is already compact; it ships
		// identity-encoded under its own Content-Type.
		payload, err := encodeV4(p.pending)
		if err != nil {
			return err
		}
		wire, contentType = payload, V4ContentType
		if p.tBytes != nil {
			p.tBytes["raw"].Add(uint64(len(payload)))
		}
	} else {
		payload, err := p.encodePending()
		if err != nil {
			return err
		}
		var body bytes.Buffer
		zw := gzip.NewWriter(&body)
		if _, err := zw.Write(payload); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		wire, contentType, encoding = body.Bytes(), "application/x-ndjson", "gzip"
		if p.tBytes != nil {
			p.tBytes["raw"].Add(uint64(len(payload)))
			p.tBytes["gzip"].Add(uint64(body.Len()))
		}
	}

	err := RetryWithBackoff(p.opts.Context, p.opts.MaxAttempts, p.opts.RetryBase,
		func() { p.retries.Add(1) },
		func() error {
			if p.tPost == nil {
				return p.post(wire, contentType, encoding)
			}
			start := time.Now()
			perr := p.post(wire, contentType, encoding)
			p.tPost.Observe(time.Since(start).Seconds())
			return perr
		})
	if err != nil {
		if p.opts.Logger != nil {
			p.opts.Logger.Warn("push flush failed, keeping samples buffered",
				"url", p.opts.URL, "attempts", p.opts.MaxAttempts,
				"pending", len(p.pending), "err", err)
		}
		return fmt.Errorf("monitor: push to %s failed after %d attempts: %w",
			p.opts.URL, p.opts.MaxAttempts, err)
	}
	n := len(p.pending)
	p.pending = p.pending[:0]
	if p.tPending != nil {
		p.tPending.Set(0)
	}
	p.sent.Add(uint64(n))
	p.pushes.Add(1)
	return nil
}

// RetryWithBackoff runs op up to maxAttempts times, sleeping base,
// 2*base, 4*base, ... between attempts — the suite's bounded-retry
// discipline, shared by the push sink and the alert webhook notifier so
// the backoff behavior cannot silently diverge.  onFail observes each
// failed attempt (e.g. a retry counter); the last error is returned when
// every attempt fails.
//
// The context bounds only the waiting, not the attempts: the first
// attempt always runs (a shutdown flush still gets its one try at the
// receiver), but a cancelled context aborts the backoff sleeps, so
// shutdown never blocks for the full ladder against a dead endpoint.
// A nil context never cancels.
func RetryWithBackoff(ctx context.Context, maxAttempts int, base time.Duration, onFail func(), op func() error) error {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			if ctx == nil {
				time.Sleep(base << uint(attempt-1))
			} else {
				t := time.NewTimer(base << uint(attempt-1))
				select {
				case <-ctx.Done():
					t.Stop()
					return lastErr
				case <-t.C:
				}
			}
		}
		if lastErr = op(); lastErr == nil {
			return nil
		}
		if onFail != nil {
			onFail()
		}
	}
	return lastErr
}

func (p *PushSink) post(wire []byte, contentType, encoding string) error {
	req, err := http.NewRequest(http.MethodPost, p.opts.URL, bytes.NewReader(wire))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("receiver returned %s", resp.Status)
	}
	return nil
}
