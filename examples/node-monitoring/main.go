// Node-monitoring: the paper's side-effect use of likwid-perfCtr as a
// monitoring tool for a complete shared-memory node (§II-A):
//
//	$ likwid-perfCtr -c 0-7 -g ... sleep 1
//
// Here a background job runs on two cores of a Westmere node while the
// "wrapper" measures all cores over one second of simulated time with the
// MEM group — core-based counting picks up whatever runs on each core,
// whoever started it.
//
// Run with: go run ./examples/node-monitoring
package main

import (
	"fmt"
	"log"

	"likwid"
	"likwid/internal/machine"
)

func main() {
	node, err := likwid.Open("westmereEP")
	if err != nil {
		log.Fatal(err)
	}
	allCores := make([]int, 12)
	for i := range allCores {
		allCores[i] = i
	}

	// A "foreign" background job the monitor did not start: two streaming
	// tasks pinned to cores 2 and 3.
	var works []*likwid.ThreadWork
	for _, cpu := range []int{2, 3} {
		t := node.Spawn(fmt.Sprintf("background-%d", cpu))
		if err := node.M.OS.Pin(t, cpu); err != nil {
			log.Fatal(err)
		}
		works = append(works, &likwid.ThreadWork{
			Task:  t,
			Elems: 4e7,
			PerElem: likwid.PerElem{
				Cycles:       1.0,
				Counts:       machine.Counts{machine.EvInstr: 3},
				MemReadBytes: 16, MemWriteBytes: 8,
				Streams: 3, Vector: true,
			},
		})
	}

	results, report, err := node.MeasureGroup(allCores, "MEM", func() error {
		node.Run(works) // the background job runs to completion
		node.M.RunIdle(0.05, 0)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("whole-node monitoring, MEM group, cores 0-11:")
	fmt.Print(report)

	// Uncore events are socket-wide: the socket lock attributes them to
	// the first measured core of each socket (cores 0 and 6).
	reads := results.Counts["UNC_QMC_NORMAL_READS_ANY"]
	fmt.Printf("\nsocket 0 memory reads (core 0 column):  %.3e lines\n", reads[0])
	fmt.Printf("socket 1 memory reads (core 6 column):  %.3e lines\n", reads[6])
	fmt.Println("the busy cores (2, 3) show up in core-scope events; memory traffic")
	fmt.Println("appears once per socket under the socket lock.")
}
