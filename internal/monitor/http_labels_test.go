package monitor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// ---- satellite regressions -------------------------------------------------

// TestMetricsLatestStaysMonotonicOnOutOfOrderIngest pins the /metrics
// snapshot against replayed or late-arriving batches: an older sample
// must never overwrite a newer "latest" value.
func TestMetricsLatestStaysMonotonicOnOutOfOrderIngest(t *testing.T) {
	h, _ := newTestHTTPSink(t)
	base := "http://" + h.Addr()
	newest := []byte(`{"time":100,"metric":"bw","scope":"node","id":0,"value":7}` + "\n")
	replay := []byte(`{"time":50,"metric":"bw","scope":"node","id":0,"value":3}` + "\n")
	if code, body := postIngest(t, base, newest, false); code != http.StatusOK {
		t.Fatalf("ingest = %d %q", code, body)
	}
	if code, body := postIngest(t, base, replay, false); code != http.StatusOK {
		t.Fatalf("replay ingest = %d %q", code, body)
	}
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, `likwid_bw{scope="node",id="0"} 7 100`) {
		t.Errorf("/metrics after replay = %d %q, want the t=100 value 7 kept", code, body)
	}
	// The same guarantee holds on the Write (local batch) path.
	if err := h.Write(Batch{Collector: "c", Time: 10, Samples: []Sample{
		{Metric: "bw", Scope: ScopeNode, ID: 0, Time: 10, Value: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, body := get(t, base+"/metrics"); !strings.Contains(body, `likwid_bw{scope="node",id="0"} 7 100`) {
		t.Errorf("/metrics after stale Write = %q, want the t=100 value kept", body)
	}
	// A genuinely newer sample still replaces it.
	if code, _ := postIngest(t, base, []byte(`{"time":101,"metric":"bw","scope":"node","id":0,"value":9}`+"\n"), false); code != http.StatusOK {
		t.Fatal("newer ingest rejected")
	}
	if _, body := get(t, base+"/metrics"); !strings.Contains(body, `likwid_bw{scope="node",id="0"} 9 101`) {
		t.Errorf("/metrics after newer ingest = %q, want value 9 at t=101", body)
	}
}

// TestIngestExactlyAtDecompressedLimit pins the 413 boundary: a
// decompressed payload of exactly maxIngestDecompressed bytes is within
// the limit and must be accepted; one byte more is rejected.
func TestIngestExactlyAtDecompressedLimit(t *testing.T) {
	record := `{"time":1,"metric":"bw","scope":"node","id":0,"value":1}` + "\n"
	h, store := newTestHTTPSink(t)
	// Shrink this sink's own cap so the boundary payload stays tiny;
	// other sinks (and production) keep the constant default.
	h.maxDecompressed = 1024
	base := "http://" + h.Addr()

	// Pad with trailing newlines (whitespace between JSON values) to
	// exactly the cap.
	atLimit := record + strings.Repeat("\n", int(h.maxDecompressed)-len(record))
	if int64(len(atLimit)) != h.maxDecompressed {
		t.Fatalf("test payload is %d bytes, want %d", len(atLimit), h.maxDecompressed)
	}
	code, body := postIngest(t, base, gzipped(t, []byte(atLimit)), true)
	if code != http.StatusOK {
		t.Fatalf("at-limit ingest = %d %q, want 200", code, body)
	}
	if n := store.Len(Key{Metric: "bw", Scope: ScopeNode, ID: 0}); n != 1 {
		t.Errorf("store has %d points after at-limit ingest, want 1", n)
	}

	overLimit := atLimit + "\n"
	code, body = postIngest(t, base, gzipped(t, []byte(overLimit)), true)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-limit ingest = %d %q, want 413", code, body)
	}
}

// TestLimitedReaderBoundary covers the reader directly: exactly n bytes
// stream through cleanly, n+1 errors.
func TestLimitedReaderBoundary(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 64)
	lr := &limitedReader{r: bytes.NewReader(data), n: 64}
	got, err := io.ReadAll(lr)
	if err != nil || len(got) != 64 {
		t.Errorf("ReadAll(at limit) = %d bytes, %v; want 64, nil", len(got), err)
	}
	lr = &limitedReader{r: bytes.NewReader(append(data, 'y')), n: 64}
	if _, err := io.ReadAll(lr); err != errTooLarge {
		t.Errorf("ReadAll(over limit) err = %v, want errTooLarge", err)
	}
}

// ---- labels end to end over HTTP -------------------------------------------

// TestIngestV3LabelsBecomeKeyDimension is the v3 wire contract: the
// labels object lands interned in Key.Labels, distinct label sets stay
// distinct series, and /metrics exposes the full set.
func TestIngestV3LabelsBecomeKeyDimension(t *testing.T) {
	h, store := newTestHTTPSink(t)
	base := "http://" + h.Addr()
	payload := []byte(`{"time":1,"source":"nodeA","labels":{"job":"lbm","cluster":"emmy"},"metric":"bw","scope":"node","id":0,"value":10}
{"time":1,"source":"nodeA","labels":{"job":"ep","cluster":"emmy"},"metric":"bw","scope":"node","id":0,"value":20}
{"time":1,"source":"nodeA","metric":"bw","scope":"node","id":0,"value":30}
`)
	if code, body := postIngest(t, base, payload, false); code != http.StatusOK {
		t.Fatalf("v3 ingest = %d %q", code, body)
	}
	lbm := mustLabels(t, "cluster=emmy,job=lbm")
	ep := mustLabels(t, "cluster=emmy,job=ep")
	if p, ok := store.Latest(Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, Labels: lbm}); !ok || p.Value != 10 {
		t.Errorf("job=lbm series latest = %+v (%v), want 10", p, ok)
	}
	if p, ok := store.Latest(Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, Labels: ep}); !ok || p.Value != 20 {
		t.Errorf("job=ep series latest = %+v (%v), want 20", p, ok)
	}
	if p, ok := store.Latest(Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode}); !ok || p.Value != 30 {
		t.Errorf("unlabelled series latest = %+v (%v), want 30", p, ok)
	}
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK ||
		!strings.Contains(body, `likwid_bw{source="nodeA",cluster="emmy",job="lbm",scope="node",id="0"} 10`) {
		t.Errorf("/metrics = %d %q, want the fully labelled lbm line", code, body)
	}
}

// TestIngestRejectsMalformedLabels pins all-or-nothing label validation:
// one bad label map 400s the whole batch and nothing lands.
func TestIngestRejectsMalformedLabels(t *testing.T) {
	h, store := newTestHTTPSink(t)
	base := "http://" + h.Addr()
	good := `{"time":1,"metric":"ok","scope":"node","id":0,"value":1}` + "\n"
	for name, bad := range map[string]string{
		"bad name":       `{"time":1,"labels":{"bad name":"x"},"metric":"bw","scope":"node","id":0,"value":1}`,
		"digit name":     `{"time":1,"labels":{"1job":"x"},"metric":"bw","scope":"node","id":0,"value":1}`,
		"empty value":    `{"time":1,"labels":{"job":""},"metric":"bw","scope":"node","id":0,"value":1}`,
		"comma in value": `{"time":1,"labels":{"job":"a,b"},"metric":"bw","scope":"node","id":0,"value":1}`,
		"quote in value": `{"time":1,"labels":{"job":"a\"b"},"metric":"bw","scope":"node","id":0,"value":1}`,
	} {
		code, body := postIngest(t, base, []byte(good+bad+"\n"), false)
		if code != http.StatusBadRequest {
			t.Errorf("%s: ingest = %d %q, want 400", name, code, body)
		}
	}
	if n := len(store.Keys()); n != 0 {
		t.Errorf("store has %d series after rejected batches, want 0 (all-or-nothing)", n)
	}
}

// TestIngestDefaultLabelsMerged covers receiver-side -labels: defaults
// are stamped under each ingested sample's own labels, the sample
// winning per name.
func TestIngestDefaultLabelsMerged(t *testing.T) {
	h, store := newTestHTTPSink(t)
	h.SetIngestLabels(mustLabels(t, "cluster=emmy,job=default"))
	base := "http://" + h.Addr()
	payload := []byte(`{"time":1,"source":"nodeA","labels":{"job":"lbm"},"metric":"bw","scope":"node","id":0,"value":10}
{"time":1,"source":"nodeB","metric":"bw","scope":"node","id":0,"value":20}
`)
	if code, body := postIngest(t, base, payload, false); code != http.StatusOK {
		t.Fatalf("ingest = %d %q", code, body)
	}
	a := Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, Labels: mustLabels(t, "cluster=emmy,job=lbm")}
	if p, ok := store.Latest(a); !ok || p.Value != 10 {
		t.Errorf("nodeA latest = %+v (%v), want its own job=lbm kept under the cluster default", p, ok)
	}
	b := Key{Source: "nodeB", Metric: "bw", Scope: ScopeNode, Labels: mustLabels(t, "cluster=emmy,job=default")}
	if p, ok := store.Latest(b); !ok || p.Value != 20 {
		t.Errorf("nodeB latest = %+v (%v), want the full default set", p, ok)
	}
}

// TestIngestDefaultLabelsMergeOverflowRejected pins the wire cap across
// the receiver merge: defaults plus a sample's own labels must not
// smuggle an over-cap set into the store; the batch 400s whole.
func TestIngestDefaultLabelsMergeOverflowRejected(t *testing.T) {
	h, store := newTestHTTPSink(t)
	defaults := map[string]string{}
	for i := 0; i < maxLabels; i++ {
		defaults[fmt.Sprintf("d%d", i)] = "x"
	}
	ls, err := MakeLabels(defaults)
	if err != nil {
		t.Fatal(err)
	}
	h.SetIngestLabels(ls)
	// A label value no other test interns, so the intern table must not
	// grow from this rejected batch.
	payload := []byte(`{"time":1,"labels":{"job":"overflow_probe_v1"},"metric":"bw","scope":"node","id":0,"value":1}` + "\n")
	before := internTableSize()
	code, body := postIngest(t, "http://"+h.Addr(), payload, false)
	if code != http.StatusBadRequest || !strings.Contains(body, "exceed the limit") {
		t.Errorf("overflowing merge = %d %q, want 400", code, body)
	}
	if n := len(store.Keys()); n != 0 {
		t.Errorf("store has %d series after the rejected merge, want 0", n)
	}
	if after := internTableSize(); after != before {
		t.Errorf("intern table grew by %d sets from a rejected batch, want no residue", after-before)
	}
}

// internTableSize counts the process-wide interned label sets.
func internTableSize() int {
	labelIntern.Lock()
	defer labelIntern.Unlock()
	return len(labelIntern.m)
}

// TestQueryLabelSelectors covers /query?label.NAME=VALUE: exact and
// wildcard values, composition with source=, and the fan-out response
// shape with per-series label sets.
func TestQueryLabelSelectors(t *testing.T) {
	h, store := newTestHTTPSink(t)
	base := "http://" + h.Addr()
	lbm := mustLabels(t, "cluster=emmy,job=lbm")
	ep := mustLabels(t, "cluster=emmy,job=ep")
	store.Append(Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, Labels: lbm}, Point{Time: 1, Value: 10})
	store.Append(Key{Source: "nodeB", Metric: "bw", Scope: ScopeNode, Labels: lbm}, Point{Time: 1, Value: 11})
	store.Append(Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, Labels: ep}, Point{Time: 1, Value: 20})
	store.Append(Key{Metric: "bw", Scope: ScopeNode}, Point{Time: 1, Value: 1})

	series := func(url string) []queryResponse {
		t.Helper()
		code, body := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", url, code, body)
		}
		var resp querySeriesResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
		return resp.Series
	}

	// A label selector alone fans out across sources carrying it.
	got := series(base + "/query?metric=bw&scope=node&source=*&label.job=lbm")
	if len(got) != 2 || got[0].Source != "nodeA" || got[1].Source != "nodeB" {
		t.Fatalf("label.job=lbm matched %+v, want nodeA and nodeB", got)
	}
	if got[0].Labels["job"] != "lbm" || got[0].Labels["cluster"] != "emmy" {
		t.Errorf("response labels = %v, want the full series set", got[0].Labels)
	}

	// Composable with an exact source: one agent's labelled series only.
	got = series(base + "/query?metric=bw&scope=node&source=nodeA&label.job=lbm")
	if len(got) != 1 || got[0].Points[0].Value != 10 {
		t.Errorf("source=nodeA&label.job=lbm = %+v, want the one lbm series", got)
	}

	// Wildcard selector values work, and multiple selectors AND.
	got = series(base + "/query?metric=bw&scope=node&source=*&label.job=*&label.cluster=em*")
	if len(got) != 3 {
		t.Errorf("label.job=*&label.cluster=em* matched %d series, want 3", len(got))
	}

	// Unlabelled series never match a selector.
	got = series(base + "/query?metric=bw&scope=node&source=*&label.rack=*")
	if len(got) != 0 {
		t.Errorf("label.rack=* matched %d series, want 0", len(got))
	}

	// Without an explicit source parameter a label selector fans out
	// across the fleet — the slice must not silently come back empty on
	// a receiver whose series all carry sources.
	got = series(base + "/query?metric=bw&scope=node&label.job=lbm")
	if len(got) != 2 {
		t.Errorf("label.job=lbm without source matched %d series, want the 2 fleet series", len(got))
	}
	// An explicit empty source still means local-only.
	got = series(base + "/query?metric=bw&scope=node&source=&label.job=lbm")
	if len(got) != 0 {
		t.Errorf("explicit empty source matched %d series, want 0 (local only)", len(got))
	}

	// Malformed selectors are 400s — reserved names included, since a
	// series label can never be called source/scope/id.
	for _, q := range []string{"label.bad%20name=x", "label.job=", "label.source=nodeA"} {
		if code, _ := get(t, base+"/query?metric=bw&scope=node&"+q); code != http.StatusBadRequest {
			t.Errorf("/query with %s = %d, want 400", q, code)
		}
	}
}

// TestIngestMixedVersionsV1V2V3 is the compat contract across all three
// wire generations: v1 prefix form, v2 source field, and v3 labels land
// exactly where they should — absent labels are the empty set, so v1
// and v2 keys are unchanged.
func TestIngestMixedVersionsV1V2V3(t *testing.T) {
	tests := []struct {
		name    string
		records []string
		key     Key
		values  []float64
	}{
		{
			name: "v1 and v2 share the unlabelled key",
			records: []string{
				`{"time":1,"metric":"nodeA/bw","scope":"node","id":0,"value":10}`,
				`{"time":2,"source":"nodeA","metric":"bw","scope":"node","id":0,"value":20}`,
			},
			key:    Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode},
			values: []float64{10, 20},
		},
		{
			name: "v3 without labels is exactly v2",
			records: []string{
				`{"time":1,"source":"nodeA","metric":"bw","scope":"node","id":0,"value":10}`,
				`{"time":2,"source":"nodeA","labels":{},"metric":"bw","scope":"node","id":0,"value":20}`,
			},
			key:    Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode},
			values: []float64{10, 20},
		},
		{
			name: "equal v3 label sets stitch into one series",
			records: []string{
				`{"time":1,"source":"nodeA","labels":{"job":"lbm","cluster":"emmy"},"metric":"bw","scope":"node","id":0,"value":10}`,
				`{"time":2,"source":"nodeA","labels":{"cluster":"emmy","job":"lbm"},"metric":"bw","scope":"node","id":0,"value":20}`,
			},
			key:    Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, Labels: labelsOrDie("cluster=emmy,job=lbm")},
			values: []float64{10, 20},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h, store := newTestHTTPSink(t)
			base := "http://" + h.Addr()
			for i, rec := range tt.records {
				if code, body := postIngest(t, base, []byte(rec+"\n"), false); code != http.StatusOK {
					t.Fatalf("record %d ingest = %d %q", i, code, body)
				}
			}
			if n := len(store.Keys()); n != 1 {
				t.Fatalf("store has %d series, want all generations on one key (keys: %+v)", n, store.Keys())
			}
			pts := store.Window(tt.key, 0, -1)
			if len(pts) != len(tt.values) {
				t.Fatalf("window = %+v, want %d stitched points", pts, len(tt.values))
			}
			for i, p := range pts {
				if p.Value != tt.values[i] {
					t.Errorf("point %d = %+v, want value %v", i, p, tt.values[i])
				}
			}
		})
	}
}

// labelsOrDie builds labels in table literals where no *testing.T is in
// scope yet.
func labelsOrDie(spec string) Labels {
	ls, err := ParseLabelSpec(spec)
	if err != nil {
		panic(err)
	}
	return ls
}
