// Package cluster turns the single-URL push transport into a fleet
// topology layer: a pool of receiver targets with per-target health
// checking, a consistent-hash ring partitioning series across the pool,
// and delivery policies — shard (horizontal scale-out), mirror (HA full
// stream), failover (ordered fallback).  It is the horizontal half of
// the "monitoring for the masses" architecture: agents push into a
// receiver pool instead of a single receiver, and receivers themselves
// re-push upward to form node → rack → cluster aggregation trees.
package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/telemetry"
)

// Policy selects how a batch is spread across the target pool.
type Policy int

const (
	// PolicyShard hash-partitions series across the healthy targets via
	// the consistent-hash ring: each interned Key has exactly one owner,
	// so a pool of N receivers each holds ~1/N of the fleet's series.
	PolicyShard Policy = iota
	// PolicyMirror sends the full stream to every target — the HA mode.
	// Unhealthy mirrors buffer (bounded) and catch up on recovery; the
	// receiver-side /query dedupe collapses the duplicate points.
	PolicyMirror
	// PolicyFailover sends everything to the first healthy target in
	// spec order — primary/standby with ordered fallback.
	PolicyFailover
)

// String returns the spec-grammar name of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyShard:
		return "shard"
	case PolicyMirror:
		return "mirror"
	case PolicyFailover:
		return "failover"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy maps a spec-grammar name to its Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "shard":
		return PolicyShard, nil
	case "mirror":
		return PolicyMirror, nil
	case "failover":
		return PolicyFailover, nil
	}
	return 0, fmt.Errorf("cluster: unknown policy %q (want shard, mirror or failover)", s)
}

// Options configure a cluster sink.  Zero values take the defaults
// noted per field.
type Options struct {
	// Targets are the receiver ingest URLs, in spec order (failover
	// preference order).  Required, at least one.
	Targets []string
	// Policy selects shard, mirror or failover (default shard).
	Policy Policy
	// Format selects the wire encoding per target (default WireJSON).
	Format monitor.WireFormat
	// Source labels sourceless samples with this agent's push identity,
	// exactly like PushOptions.Source.
	Source string
	// FlushSamples and MaxBuffered configure each per-target push sink
	// (defaults 64 and 4096; see PushOptions).
	FlushSamples int
	MaxBuffered  int
	// RetryBase is the per-target first retry backoff (default 100 ms).
	// With more than one target the per-target attempt count is capped
	// at one, so failover engages after a single failed POST instead of
	// walking the whole retry ladder against a dead receiver.
	RetryBase time.Duration
	// VirtualNodes is the ring positions per target
	// (default DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval re-checks a healthy target's /readyz this often
	// (default 2 s); ProbeBackoff is the first re-probe delay after a
	// failure, doubling up to ProbeBackoffMax (defaults 250 ms and 8 s).
	ProbeInterval   time.Duration
	ProbeBackoff    time.Duration
	ProbeBackoffMax time.Duration
	// Context bounds retry backoffs and the probe loops.
	Context context.Context
	// Client is shared by the per-target push sinks; ProbeClient by the
	// health probes (default: a dedicated client with a 2 s timeout, so
	// a hung target cannot stall its prober for the push client's full
	// timeout).
	Client      *http.Client
	ProbeClient *http.Client
	// Now supplies the wall clock for sent_at stamps (default time.Now).
	Now func() time.Time
	// Logger receives health-transition and reroute warnings.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = DefaultVirtualNodes
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeBackoff <= 0 {
		o.ProbeBackoff = 250 * time.Millisecond
	}
	if o.ProbeBackoffMax <= 0 {
		o.ProbeBackoffMax = 8 * time.Second
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.ProbeClient == nil {
		o.ProbeClient = &http.Client{Timeout: 2 * time.Second}
	}
	return o
}

// target is one pool member: a push sink plus its health state.
type target struct {
	name     string // host:port, the telemetry label and ring member name
	url      string // ingest endpoint
	probeURL string // /readyz endpoint derived from url
	push     *monitor.PushSink

	healthy   atomic.Bool
	failovers atomic.Uint64 // reroutes away from this target
}

// Sink spreads batches across a receiver pool by policy, with
// health-checked membership.  It implements monitor.Sink and, like
// every sink, is driven by a single dispatcher goroutine: Write, Flush
// and Close never race each other.  The probe goroutines only flip the
// per-target health bits and rebuild the ring — they never touch the
// push sinks' buffers, so the single-goroutine discipline of PushSink
// holds.
type Sink struct {
	opts    Options
	targets []*target
	byName  map[string]*target

	// ring holds the healthy members; fullRing every member (the
	// fallback owner assignment when the whole pool is down, so
	// buffered samples land deterministically and ship on recovery).
	ring     atomic.Pointer[Ring]
	fullRing *Ring
	ringMu   sync.Mutex // serialises ring rebuilds, not lookups

	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New builds a cluster sink over the target pool.  Targets start
// optimistically healthy — like PushSink, the receiver is not contacted
// until the first flush or probe — and the probers take over from there.
func New(opts Options) (*Sink, error) {
	opts = opts.withDefaults()
	if len(opts.Targets) == 0 {
		return nil, fmt.Errorf("cluster: sink needs at least one target URL")
	}
	s := &Sink{opts: opts, byName: make(map[string]*target, len(opts.Targets))}
	// Satellite: with a pool to fail over to, one failed POST is enough
	// evidence — retrying the whole ladder against a dead target would
	// stall the dispatcher while a healthy target sits idle.  A
	// singleton pool keeps the usual ladder.
	maxAttempts := 0
	if len(opts.Targets) > 1 {
		maxAttempts = 1
	}
	names := make([]string, 0, len(opts.Targets))
	for _, raw := range opts.Targets {
		u, err := normalizeTarget(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := s.byName[u.name]; dup {
			return nil, fmt.Errorf("cluster: duplicate target %q in pool", u.name)
		}
		push, err := monitor.NewPushSink(monitor.PushOptions{
			URL:          u.url,
			FlushSamples: opts.FlushSamples,
			MaxBuffered:  opts.MaxBuffered,
			MaxAttempts:  maxAttempts,
			RetryBase:    opts.RetryBase,
			Source:       opts.Source,
			Context:      opts.Context,
			Client:       opts.Client,
			Now:          opts.Now,
			Logger:       opts.Logger,
			Format:       opts.Format,
		})
		if err != nil {
			return nil, err
		}
		t := &target{name: u.name, url: u.url, probeURL: u.probe, push: push}
		t.healthy.Store(true)
		s.targets = append(s.targets, t)
		s.byName[t.name] = t
		names = append(names, t.name)
	}
	s.fullRing = NewRing(names, opts.VirtualNodes)
	s.ring.Store(s.fullRing)

	ctx, cancel := context.WithCancel(opts.Context)
	s.cancel = cancel
	for _, t := range s.targets {
		s.wg.Add(1)
		go s.probeLoop(ctx, t)
	}
	return s, nil
}

// normalizeTarget splits an ingest URL into its pool-member name
// (host:port), the ingest endpoint, and the derived /readyz probe URL.
func normalizeTarget(raw string) (struct{ name, url, probe string }, error) {
	var out struct{ name, url, probe string }
	norm, err := monitor.NormalizePushURL(raw)
	if err != nil {
		return out, err
	}
	u, err := url.Parse(norm)
	if err != nil || u.Host == "" {
		return out, fmt.Errorf("cluster: bad target URL %q", raw)
	}
	out.name = u.Host
	out.url = norm
	out.probe = u.Scheme + "://" + u.Host + "/readyz"
	return out, nil
}

// Name implements monitor.Sink.
func (s *Sink) Name() string { return "cluster" }

// Policy reports the configured delivery policy.
func (s *Sink) Policy() Policy { return s.opts.Policy }

// Ring returns the current healthy-member ring (atomic snapshot).
func (s *Sink) Ring() *Ring { return s.ring.Load() }

// TargetStatus is one pool member's health snapshot for /status.
type TargetStatus struct {
	Target    string `json:"target"`
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Sent      uint64 `json:"sent"`
	Pushes    uint64 `json:"pushes"`
	Dropped   uint64 `json:"dropped"`
	Retries   uint64 `json:"retries"`
	Failovers uint64 `json:"failovers"`
}

// Status snapshots every pool member, in spec order.
func (s *Sink) Status() []TargetStatus {
	out := make([]TargetStatus, 0, len(s.targets))
	for _, t := range s.targets {
		out = append(out, TargetStatus{
			Target:    t.name,
			URL:       t.url,
			Healthy:   t.healthy.Load(),
			Sent:      t.push.Sent(),
			Pushes:    t.push.Pushes(),
			Dropped:   t.push.Dropped(),
			Retries:   t.push.Retries(),
			Failovers: t.failovers.Load(),
		})
	}
	return out
}

// Sent totals samples acknowledged across the pool.
func (s *Sink) Sent() uint64 {
	var n uint64
	for _, t := range s.targets {
		n += t.push.Sent()
	}
	return n
}

// Dropped totals samples dropped across the pool.
func (s *Sink) Dropped() uint64 {
	var n uint64
	for _, t := range s.targets {
		n += t.push.Dropped()
	}
	return n
}

// Instrument registers the cluster's self-metrics: per-target
// health/sent/failover series (labelled by target host:port) and the
// ring membership gauges.  Wiring time only, like every sink.
func (s *Sink) Instrument(reg *telemetry.Registry) {
	reg.GaugeFunc("likwid_cluster_targets", func() float64 { return float64(len(s.targets)) })
	reg.GaugeFunc("likwid_cluster_ring_targets", func() float64 { return float64(s.ring.Load().Len()) })
	reg.GaugeFunc("likwid_cluster_ring_vnodes", func() float64 { return float64(s.ring.Load().VNodes()) })
	for _, t := range s.targets {
		t := t
		reg.GaugeFunc("likwid_cluster_target_healthy", func() float64 {
			if t.healthy.Load() {
				return 1
			}
			return 0
		}, "target", t.name)
		reg.CounterFunc("likwid_cluster_target_sent_total", func() float64 {
			return float64(t.push.Sent())
		}, "target", t.name)
		reg.CounterFunc("likwid_cluster_target_failovers_total", func() float64 {
			return float64(t.failovers.Load())
		}, "target", t.name)
		reg.CounterFunc("likwid_cluster_target_dropped_total", func() float64 {
			return float64(t.push.Dropped())
		}, "target", t.name)
	}
}

// markUnhealthy flips a target down (idempotent) and shrinks the ring.
func (s *Sink) markUnhealthy(t *target, err error) {
	if !t.healthy.CompareAndSwap(true, false) {
		return
	}
	if s.opts.Logger != nil {
		s.opts.Logger.Warn("cluster target unhealthy", "target", t.name, "err", err)
	}
	s.rebuildRing()
}

// markHealthy flips a target back up (idempotent) and regrows the ring.
func (s *Sink) markHealthy(t *target) {
	if !t.healthy.CompareAndSwap(false, true) {
		return
	}
	if s.opts.Logger != nil {
		s.opts.Logger.Info("cluster target healthy", "target", t.name)
	}
	s.rebuildRing()
}

// rebuildRing publishes a fresh ring over the currently-healthy members.
// Guarded by ringMu so two concurrent transitions cannot interleave
// their read-modify-write and publish a stale membership.
func (s *Sink) rebuildRing() {
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	names := make([]string, 0, len(s.targets))
	for _, t := range s.targets {
		if t.healthy.Load() {
			names = append(names, t.name)
		}
	}
	s.ring.Store(NewRing(names, s.opts.VirtualNodes))
}

// probeLoop health-checks one target: GET /readyz every ProbeInterval
// while healthy, backing off exponentially from ProbeBackoff up to
// ProbeBackoffMax while down — a dead target costs a cheap probe every
// few seconds, a flapping one re-enters the ring within a beat.
func (s *Sink) probeLoop(ctx context.Context, t *target) {
	defer s.wg.Done()
	backoff := s.opts.ProbeBackoff
	for {
		var sleep time.Duration
		if t.healthy.Load() {
			sleep, backoff = s.opts.ProbeInterval, s.opts.ProbeBackoff
		} else {
			sleep = backoff
			if backoff *= 2; backoff > s.opts.ProbeBackoffMax {
				backoff = s.opts.ProbeBackoffMax
			}
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
		if err := s.probeOnce(ctx, t); err != nil {
			s.markUnhealthy(t, err)
		} else {
			s.markHealthy(t)
		}
	}
}

// probeOnce checks one target's readiness endpoint.
func (s *Sink) probeOnce(ctx context.Context, t *target) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.probeURL, nil)
	if err != nil {
		return err
	}
	resp, err := s.opts.ProbeClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("readiness probe returned %s", resp.Status)
	}
	return nil
}

// Write implements monitor.Sink: deliver the batch per policy.
func (s *Sink) Write(b monitor.Batch) error {
	if len(b.Samples) == 0 {
		return nil
	}
	if s.opts.Policy == PolicyMirror {
		return s.writeMirror(b)
	}
	return s.route(b)
}

// writeMirror feeds the full batch to every target: healthy mirrors
// push, unhealthy ones buffer (bounded) and catch up on recovery.  A
// failed mirror keeps its own pending — the samples are not rerouted,
// because every other mirror already has its own copy.
func (s *Sink) writeMirror(b monitor.Batch) error {
	var firstErr error
	for _, t := range s.targets {
		if !t.healthy.Load() {
			t.push.Buffer(b)
			continue
		}
		if err := t.push.Write(b); err != nil {
			s.markUnhealthy(t, err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// route delivers a batch under shard or failover policy, rerouting
// stranded samples when a target fails mid-write.  Each pass either
// succeeds or marks at least one more target unhealthy, so the loop is
// bounded by the pool size; when nothing healthy remains the samples
// are buffered on their full-ring owners (bounded, counted) to ship on
// recovery.
func (s *Sink) route(b monitor.Batch) error {
	var firstErr error
	for pass := 0; pass <= len(s.targets); pass++ {
		parts := s.partition(b)
		if parts == nil {
			// Whole pool down: park the samples on the full-ring owner
			// assignment so each series still has one deterministic home
			// and recovery does not replay duplicates from two buffers.
			s.bufferDown(b)
			return firstErr
		}
		// Every part is attempted even after one fails: a healthy
		// target's slice of the batch must not ride into the next pass
		// (let alone vanish) just because another target died first.
		var strand []monitor.Sample
		for _, part := range parts {
			if err := part.t.push.Write(monitor.Batch{
				Collector: b.Collector, Time: b.Time, Samples: part.samples,
			}); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				s.markUnhealthy(part.t, err)
				// The failed target's pending holds this part plus any
				// earlier stranded samples — take it all and re-route
				// through the shrunk pool.
				orphans := part.t.push.TakePending()
				part.t.failovers.Add(1)
				if s.opts.Logger != nil {
					s.opts.Logger.Warn("cluster rerouting samples off failed target",
						"target", part.t.name, "samples", len(orphans))
				}
				strand = append(strand, orphans...)
			}
		}
		if len(strand) == 0 {
			return nil
		}
		b = monitor.Batch{Collector: b.Collector, Time: b.Time, Samples: strand}
	}
	return firstErr
}

// part is one target's slice of a partitioned batch.
type part struct {
	t       *target
	samples []monitor.Sample
}

// partition splits a batch by policy over the healthy pool: failover
// sends everything to the first healthy target in spec order, shard
// splits per sample key by the healthy ring.  Returns nil when no
// target is healthy.
func (s *Sink) partition(b monitor.Batch) []part {
	if s.opts.Policy == PolicyFailover {
		for _, t := range s.targets {
			if t.healthy.Load() {
				return []part{{t: t, samples: b.Samples}}
			}
		}
		return nil
	}
	ring := s.ring.Load()
	if ring.Len() == 0 {
		return nil
	}
	if ring.Len() == 1 {
		if t := s.byName[ring.Targets()[0]]; t.healthy.Load() {
			return []part{{t: t, samples: b.Samples}}
		}
		return nil
	}
	byTarget := make(map[*target][]monitor.Sample, ring.Len())
	order := make([]*target, 0, ring.Len())
	for _, sm := range b.Samples {
		owner := ring.Lookup(sampleHash(sm, s.opts.Source))
		t := s.byName[owner]
		if _, seen := byTarget[t]; !seen {
			order = append(order, t)
		}
		byTarget[t] = append(byTarget[t], sm)
	}
	parts := make([]part, 0, len(order))
	for _, t := range order {
		parts = append(parts, part{t: t, samples: byTarget[t]})
	}
	return parts
}

// sampleHash positions a sample's series on the ring.  The source is
// resolved exactly like PushSink.Buffer resolves it for the wire, so
// the shard owner matches the key the receiver will intern.
func sampleHash(sm monitor.Sample, defaultSource string) uint64 {
	source := sm.Source
	switch {
	case source == "":
		source = defaultSource
	case source == monitor.SelfSource && defaultSource != "":
		source = defaultSource
	}
	return KeyHash(monitor.Key{
		Source: source,
		Metric: sm.Metric,
		Scope:  sm.Scope,
		ID:     sm.ID,
		Labels: sm.Labels,
	})
}

// bufferDown parks a batch while the whole pool is down: shard splits
// by the full ring (each series one deterministic home), failover
// buffers on the primary.  Bounded by each sink's MaxBuffered.
func (s *Sink) bufferDown(b monitor.Batch) {
	if s.opts.Policy == PolicyFailover {
		s.targets[0].push.Buffer(b)
		return
	}
	byTarget := make(map[*target][]monitor.Sample, len(s.targets))
	for _, sm := range b.Samples {
		t := s.byName[s.fullRing.Lookup(sampleHash(sm, s.opts.Source))]
		byTarget[t] = append(byTarget[t], sm)
	}
	for t, samples := range byTarget {
		t.push.Buffer(monitor.Batch{Collector: b.Collector, Time: b.Time, Samples: samples})
	}
}

// anyHealthy reports whether at least one pool member is up.
func (s *Sink) anyHealthy() bool {
	for _, t := range s.targets {
		if t.healthy.Load() {
			return true
		}
	}
	return false
}

// Close drains the pool: probe loops stop, stranded samples on down or
// failing targets are rerouted to healthy ones while any remain (the
// graceful-drain guarantee — shutdown reroutes instead of counting the
// buffered samples as drops), then every per-target sink flushes and
// closes.  Mirror pools skip the reroute: a mirror's pending belongs to
// that mirror alone, every other target already has its own copy.
func (s *Sink) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.cancel()
	s.wg.Wait()
	if s.opts.Policy != PolicyMirror {
		for _, t := range s.targets {
			if t.push.Pending() == 0 {
				continue
			}
			if t.healthy.Load() {
				err := t.push.Flush()
				if err == nil {
					continue
				}
				s.markUnhealthy(t, err)
			}
			if !s.anyHealthy() {
				continue // the per-sink Close below counts the drops
			}
			orphans := t.push.TakePending()
			t.failovers.Add(1)
			if s.opts.Logger != nil {
				s.opts.Logger.Warn("cluster draining samples off unreachable target on close",
					"target", t.name, "samples", len(orphans))
			}
			_ = s.route(monitor.Batch{Collector: "cluster/drain", Time: lastSampleTime(orphans), Samples: orphans})
		}
	}
	var firstErr error
	for _, t := range s.targets {
		if err := t.push.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func lastSampleTime(samples []monitor.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	return samples[len(samples)-1].Time
}

// SetHealthy force-sets one target's health state — test hook and
// operational escape hatch (a probe flip is otherwise at most one
// ProbeInterval away).
func (s *Sink) SetHealthy(name string, healthy bool) error {
	t, ok := s.byName[strings.TrimSpace(name)]
	if !ok {
		return fmt.Errorf("cluster: unknown target %q", name)
	}
	if healthy {
		s.markHealthy(t)
	} else {
		s.markUnhealthy(t, fmt.Errorf("marked down"))
	}
	return nil
}
