package monitor

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"maps"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"likwid/internal/telemetry"
)

// HTTPSink is the in-process scrape endpoint of the agent.  It implements
// Sink (keeping a latest-value snapshot per series) and serves:
//
//	/metrics  latest value of every series, Prometheus-style text:
//	          likwid_<metric>{source="nodeA",job="lbm",scope="socket",id="0"} <value> <sim time>
//	          (the source label appears only on fleet series; the series'
//	          structured label set follows it in canonical order)
//	/query    windowed time series from the ring-buffer store as JSON:
//	          /query?metric=NAME&scope=socket&id=0&from=0.5&to=2.0
//	          plus source=NAME for one agent's series or a '*' wildcard
//	          (source=node*) fanning out across sources, and
//	          label.NAME=VALUE selectors ('*' wildcards) slicing labelled
//	          series — any label selector returns the fan-out shape
//	/ingest   POST endpoint receiving (optionally gzipped) JSON-lines
//	          sample batches from remote push sinks; valid batches are
//	          appended to the store and the /metrics snapshot, so one
//	          receiver aggregates several node agents
//	/healthz  liveness plus batch accounting
type HTTPSink struct {
	store *Store
	ln    net.Listener
	srv   *http.Server
	mux   *http.ServeMux

	mu       sync.RWMutex
	latest   map[Key]Sample
	batches  uint64
	ingested uint64 // samples accepted via /ingest

	// ingestLabels are default labels merged under every ingested
	// sample's own labels (receiver -labels); mergeCache memoizes the
	// per-label-set merge (bounded, reset on overflow), and the batch
	// loop dedups consecutive equal label maps, so a steady fleet pays
	// roughly one intern per batch, not one per sample.
	ingestLabels Labels
	mergeCache   map[Labels]Labels

	// maxDecompressed caps one /ingest payload after gunzipping;
	// defaulted from maxIngestDecompressed at construction.
	maxDecompressed int64

	// router is the ingest routing stage (drop/rename/relabel), applied
	// to each decoded batch before label interning.  Swapped atomically
	// on reload; nil means no routes.
	router atomic.Pointer[Router]

	// forward, when set, observes every accepted ingest batch after it
	// landed in the store — the receiver→receiver re-push hook.  It runs
	// on the handler goroutine and must not block (likwid-agent installs
	// a Dispatcher.Publish, whose bounded queue drops-and-counts).  The
	// forward path never appends to the store itself, so forwarded
	// samples are journaled exactly once per hop — here, where they were
	// accepted — and never double-journal.
	forward atomic.Pointer[func(Batch)]

	// readiness checks registered by the embedding binary (notifiers up,
	// store attached); /readyz runs them all.  Guarded by readyMu, not
	// h.mu: checks may themselves read sink state.
	readyMu     sync.Mutex
	readyChecks []readyCheck

	// Telemetry instruments, resolved by Instrument (nil until then; the
	// handlers nil-check, so zero-value sinks — the fuzz harness builds
	// one from a struct literal — stay valid).
	treg      *telemetry.Registry
	tRequests *telemetry.Counter
	tAccepted *telemetry.Counter
	tRejected map[string]*telemetry.Counter
	tDecode   *telemetry.Histogram
	tAppend   *telemetry.Histogram

	// Per-source ingest instruments, memoized and capped: past
	// maxIngestSources distinct sources everything lands on the "other"
	// bucket, so a hostile pusher cannot balloon the registry.
	srcMu   sync.Mutex
	sources map[string]*sourceInstruments

	// now supplies the receiver clock for wire-latency and skew
	// measurements (nil means time.Now; tests pin it).
	now func() time.Time
}

// sourceInstruments is one pushing agent's ingest telemetry.
type sourceInstruments struct {
	samples *telemetry.Counter   // accepted samples
	wire    *telemetry.Histogram // receive − sent_at, floored at 0
	skew    *telemetry.Histogram // receive − sent_at, signed
}

// readyCheck is one named /readyz probe.
type readyCheck struct {
	name string
	fn   func() error
}

// NewHTTPSink listens on addr immediately (so scrapes work as soon as the
// agent is up) and serves in a background goroutine.  The store backs
// /query and may be nil to disable windowed queries.
func NewHTTPSink(addr string, store *Store) (*HTTPSink, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: http sink: %w", err)
	}
	h := &HTTPSink{store: store, ln: ln, latest: map[Key]Sample{}, maxDecompressed: maxIngestDecompressed}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/query", h.handleQuery)
	mux.HandleFunc("/ingest", h.handleIngest)
	mux.HandleFunc("/healthz", h.handleHealth)
	mux.HandleFunc("/readyz", h.handleReady)
	h.mux = mux
	h.srv = &http.Server{Handler: mux}
	go func() { _ = h.srv.Serve(ln) }()
	return h, nil
}

// Handle mounts an extra endpoint on the sink's server — the extension
// point for layers above the monitor (the alert engine's /alerts and
// /rules) without this package depending on them.  ServeMux registration
// is internally locked, so mounting after the server is up is safe;
// registering a pattern twice panics, exactly like http.Handle.
func (h *HTTPSink) Handle(pattern string, handler http.Handler) {
	h.mux.Handle(pattern, handler)
}

// Addr returns the bound listen address (useful with port 0 in tests).
func (h *HTTPSink) Addr() string { return h.ln.Addr().String() }

// maxIngestSources caps the per-source instrument cardinality; sources
// past the cap share the "other" bucket.
const maxIngestSources = 256

// Instrument registers the ingest path's self-metrics on reg.  Call at
// wiring time, before traffic arrives.
func (h *HTTPSink) Instrument(reg *telemetry.Registry) {
	h.treg = reg
	h.tRequests = reg.Counter("likwid_ingest_requests_total")
	h.tAccepted = reg.Counter("likwid_ingest_accepted_total")
	h.tRejected = map[string]*telemetry.Counter{}
	for _, reason := range []string{"method", "encoding", "gzip", "too_large", "decode", "labels"} {
		h.tRejected[reason] = reg.Counter("likwid_ingest_rejected_total", "reason", reason)
	}
	h.tDecode = reg.Histogram("likwid_ingest_decode_seconds", telemetry.DurationBuckets)
	h.tAppend = reg.Histogram("likwid_ingest_append_seconds", telemetry.DurationBuckets)
}

// reject counts one rejected ingest request under its reason (a no-op
// until Instrument).
func (h *HTTPSink) reject(reason string) {
	if c := h.tRejected[reason]; c != nil {
		c.Inc()
	}
}

// sourceInstr resolves (memoized) the per-source ingest instruments,
// folding the long tail past the cardinality cap into "other".
func (h *HTTPSink) sourceInstr(source string) *sourceInstruments {
	if h.treg == nil {
		return nil
	}
	if source == "" {
		source = "unknown"
	}
	h.srcMu.Lock()
	defer h.srcMu.Unlock()
	if si := h.sources[source]; si != nil {
		return si
	}
	if h.sources == nil {
		h.sources = map[string]*sourceInstruments{}
	}
	if len(h.sources) >= maxIngestSources {
		source = "other"
		if si := h.sources[source]; si != nil {
			return si
		}
	}
	// The label is "peer", not "source": source is a reserved label name
	// in the store (it is the Key dimension itself), and these metrics
	// must stay republishable as self/likwid_* series.
	si := &sourceInstruments{
		samples: h.treg.Counter("likwid_ingest_samples_total", "peer", source),
		wire:    h.treg.Histogram("likwid_ingest_wire_seconds", telemetry.DurationBuckets, "peer", source),
		skew:    h.treg.Histogram("likwid_ingest_clock_skew_seconds", telemetry.SkewBuckets, "peer", source),
	}
	h.sources[source] = si
	return si
}

// AddReadyCheck registers one named /readyz probe; a nil error from
// every probe is "ready".  The agent binary registers its notifier and
// store checks here at startup.
func (h *HTTPSink) AddReadyCheck(name string, fn func() error) {
	h.readyMu.Lock()
	h.readyChecks = append(h.readyChecks, readyCheck{name: name, fn: fn})
	h.readyMu.Unlock()
}

// handleReady runs every registered readiness probe: 200 with per-check
// "ok" when all pass, 503 naming each failure otherwise.  No checks
// registered means ready — liveness alone.
func (h *HTTPSink) handleReady(w http.ResponseWriter, _ *http.Request) {
	h.readyMu.Lock()
	checks := append([]readyCheck(nil), h.readyChecks...)
	h.readyMu.Unlock()
	results := map[string]string{}
	ready := true
	for _, c := range checks {
		if err := c.fn(); err != nil {
			results[c.name] = err.Error()
			ready = false
		} else {
			results[c.name] = "ok"
		}
	}
	status := "ready"
	code := http.StatusOK
	if !ready {
		status = "unavailable"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Status string            `json:"status"`
		Checks map[string]string `json:"checks,omitempty"`
	}{Status: status, Checks: results})
}

// Name implements Sink.
func (h *HTTPSink) Name() string { return "http" }

// SetRouter installs (or, with nil, removes) the ingest routing stage.
// The swap is atomic, so reloads under live ingest traffic are safe;
// in-flight batches finish on the router they started with.
func (h *HTTPSink) SetRouter(r *Router) {
	if r != nil && r.Len() == 0 {
		r = nil
	}
	h.router.Store(r)
}

// Router returns the installed routing stage (nil when none), for
// status endpoints.
func (h *HTTPSink) Router() *Router { return h.router.Load() }

// SetForward installs (or, with nil, removes) the accepted-batch
// observer backing receiver→receiver re-push: every batch /ingest
// accepts is handed to f after its samples landed in the store, with
// labels already merged and interned.  f runs on the handler goroutine
// and must not block; installing is atomic, so wiring a forward under
// live traffic is safe.
func (h *HTTPSink) SetForward(f func(Batch)) {
	if f == nil {
		h.forward.Store(nil)
		return
	}
	h.forward.Store(&f)
}

// SetIngestLabels installs default labels merged under every ingested
// sample's own labels (a per-name default: the sample wins on
// conflict) — the receiver half of likwid-agent -labels, stamping e.g.
// cluster=emmy onto a whole fleet's pushes.  Call before traffic
// arrives (likwid-agent does, right after constructing the sink).
func (h *HTTPSink) SetIngestLabels(ls Labels) {
	h.mu.Lock()
	h.ingestLabels = ls
	h.mergeCache = nil
	h.mu.Unlock()
}

// setLatestLocked replaces a series' /metrics snapshot entry only when
// the sample is at least as new as the stored one: a replayed or
// late-arriving ingest batch must not regress "latest" to an older
// value.  Ties take the incoming sample, so a corrected re-push of the
// same instant wins.  The deliberate flip side: an agent that restarts
// with a stable Source AND a reset simulated clock reports under its
// old high-water mark until its time axis catches up — the default
// hostname-pid source sidesteps this by changing per process, and a
// monotonic "latest" beats one that time-travels backwards on replay.
func (h *HTTPSink) setLatestLocked(s Sample) {
	k := s.Key()
	if prev, ok := h.latest[k]; ok && s.Time < prev.Time {
		return
	}
	h.latest[k] = s
}

// Write updates the latest-value snapshot served by /metrics.
func (h *HTTPSink) Write(b Batch) error {
	h.mu.Lock()
	for _, s := range b.Samples {
		h.setLatestLocked(s)
	}
	h.batches++
	h.mu.Unlock()
	return nil
}

// Close stops the server.
func (h *HTTPSink) Close() error { return h.srv.Close() }

func (h *HTTPSink) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	samples := make([]Sample, 0, len(h.latest))
	for _, s := range h.latest {
		samples = append(samples, s)
	}
	h.mu.RUnlock()
	sort.Slice(samples, func(i, j int) bool {
		a, b := samples[i], samples[j]
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Labels.String() < b.Labels.String()
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, s := range samples {
		// Identity labels lead (source, then the structured set in
		// canonical order), the topology labels close the block.
		fmt.Fprintf(w, "likwid_%s{", SanitizeMetric(s.Metric))
		if s.Source != "" {
			fmt.Fprintf(w, "source=%q,", s.Source)
		}
		for _, p := range s.Labels.Pairs() {
			fmt.Fprintf(w, "%s=%q,", p.Name, p.Value)
		}
		fmt.Fprintf(w, "scope=%q,id=%q} %s %s\n",
			s.Scope, strconv.Itoa(s.ID), formatValue(s.Value), formatTime(s.Time))
	}
}

// queryResponse is the /query JSON payload for one series.
type queryResponse struct {
	Source string            `json:"source,omitempty"`
	Metric string            `json:"metric"`
	Scope  string            `json:"scope"`
	ID     int               `json:"id"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

// querySeriesResponse is the /query payload for a wildcard source or
// label selector: one entry per matched series, sorted by key.
type querySeriesResponse struct {
	Series []queryResponse `json:"series"`
}

// labelSelectors extracts the label.NAME=PATTERN parameters of a /query
// request ('*' runs wildcard in the pattern, composable with source=).
func labelSelectors(q map[string][]string) ([]Label, error) {
	var sels []Label
	for key, vals := range q {
		name, ok := strings.CutPrefix(key, "label.")
		if !ok {
			continue
		}
		if !ValidLabelName(name) {
			return nil, fmt.Errorf("bad label selector name %q", name)
		}
		if ReservedLabelName(name) {
			return nil, fmt.Errorf("label name %q is reserved; use the %s= parameter instead", name, name)
		}
		if len(vals) != 1 {
			return nil, fmt.Errorf("label selector %q given %d times, want one", key, len(vals))
		}
		if vals[0] == "" {
			return nil, fmt.Errorf("empty label selector %q", key)
		}
		sels = append(sels, Label{Name: name, Value: vals[0]})
	}
	return sels, nil
}

func (h *HTTPSink) handleQuery(w http.ResponseWriter, r *http.Request) {
	if h.store == nil {
		http.Error(w, "no store attached", http.StatusNotImplemented)
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		http.Error(w, "missing metric parameter", http.StatusBadRequest)
		return
	}
	source := q.Get("source")
	sels, err := labelSelectors(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Label slicing and metric wildcards are inherently cross-source:
	// without an explicit source parameter they fan out across the
	// fleet instead of silently matching only local (sourceless) series
	// on a receiver.  An explicit source= (even empty, meaning
	// local-only) is honored.
	if _, explicit := q["source"]; !explicit &&
		(len(sels) > 0 || strings.Contains(metric, "*")) {
		source = "*"
	}
	scope := ScopeNode
	if sc := q.Get("scope"); sc != "" {
		var err error
		if scope, err = ParseScope(sc); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	id := 0
	if is := q.Get("id"); is != "" {
		var err error
		if id, err = strconv.Atoi(is); err != nil {
			http.Error(w, "bad id parameter", http.StatusBadRequest)
			return
		}
	}
	from, to := 0.0, -1.0
	if fs := q.Get("from"); fs != "" {
		v, err := strconv.ParseFloat(fs, 64)
		if err != nil {
			http.Error(w, "bad from parameter", http.StatusBadRequest)
			return
		}
		from = v
	}
	if ts := q.Get("to"); ts != "" {
		v, err := strconv.ParseFloat(ts, 64)
		if err != nil {
			http.Error(w, "bad to parameter", http.StatusBadRequest)
			return
		}
		to = v
	}
	w.Header().Set("Content-Type", "application/json")
	if strings.Contains(source, "*") || strings.Contains(metric, "*") || len(sels) > 0 {
		// Wildcards (source and/or metric) and label selection: one
		// response entry per matched series (a selector can match
		// several series even under one exact source), streamed so a
		// fleet-wide fan-out never holds the whole payload in memory.
		h.writeQuerySeries(w, h.queryKeys(source, metric, scope, id, sels), from, to)
		return
	}
	key := h.resolveKey(source, metric, scope, id)
	resp := queryResponse{
		Source: key.Source,
		Metric: key.Metric,
		Scope:  key.Scope.String(),
		ID:     key.ID,
		Labels: key.Labels.Map(),
		Points: dedupePoints(h.store.Window(key, from, to)),
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// dedupePoints collapses same-timestamp runs of a sorted window to their
// newest member, in place.  A mirrored HA pair both forwarding into one
// federation root stores each sample once per replica; /query merges the
// replicas back into each Key+timestamp exactly once, keeping the last
// write — the same latest-wins rule the /metrics snapshot applies.
func dedupePoints(pts []Point) []Point {
	if len(pts) < 2 {
		return pts
	}
	out := pts[:0]
	for i, p := range pts {
		if i+1 < len(pts) && pts[i+1].Time == p.Time {
			continue // a newer write of the same instant follows
		}
		out = append(out, p)
	}
	return out
}

// writeQuerySeries streams the fan-out /query payload: one matched
// series is encoded at a time with a single window buffer reused across
// them, so a wildcard over thousands of fleet series never materializes
// the full response — or every series' points — in memory at once.
func (h *HTTPSink) writeQuerySeries(w http.ResponseWriter, keys []Key, from, to float64) {
	_, _ = io.WriteString(w, `{"series":[`)
	var window []Point
	for i, k := range keys {
		window = h.store.WindowInto(k, from, to, window)
		pts := dedupePoints(window)
		if pts == nil {
			pts = []Point{}
		}
		entry, err := json.Marshal(queryResponse{
			Source: k.Source,
			Metric: k.Metric,
			Scope:  k.Scope.String(),
			ID:     k.ID,
			Labels: k.Labels.Map(),
			Points: pts,
		})
		if err != nil { // unreachable: plain structs marshal
			continue
		}
		if i > 0 {
			_, _ = w.Write([]byte{','})
		}
		_, _ = w.Write(entry)
	}
	_, _ = io.WriteString(w, "]}\n")
}

// resolveKey accepts either the exact stored metric name or its sanitized
// exposition form, so /query?metric=memory_bandwidth_mbytes_s works after
// scraping /metrics.
func (h *HTTPSink) resolveKey(source, metric string, scope Scope, id int) Key {
	key := Key{Source: source, Metric: metric, Scope: scope, ID: id}
	if h.store.Len(key) > 0 {
		return key
	}
	// The sanitized reverse lookup resolves through the selector index
	// (bySanitized postings) instead of scanning every stored key.
	keys := h.store.Select(Selector{
		Source: source, Metric: metric, QueryForm: true,
		Scope: scope, ID: id,
	})
	if len(keys) > 0 {
		return keys[0]
	}
	return key
}

// queryKeys lists the stored series matching a source pattern (exact or
// '*' wildcard), a label selector set, and a metric selector (exact,
// sanitized, or '*' wildcard against the raw or sanitized name) at one
// scope/id, sorted by source then labels — Store.Select with the /query
// metric dialect.
func (h *HTTPSink) queryKeys(sourcePattern, metric string, scope Scope, id int, sels []Label) []Key {
	return h.store.Select(Selector{
		Source: sourcePattern, Metric: metric, QueryForm: true,
		Labels: sels, Scope: scope, ID: id,
	})
}

// ingest limits: the compressed body is capped by MaxBytesReader, the
// decompressed stream by limitedReader, so a gzip bomb cannot balloon
// the receiver.  The decompressed cap is a per-sink field (defaulted
// from the constant) so the at-limit regression test can shrink its
// own sink instead of mutating shared state under live handlers.
const (
	maxIngestCompressed   = 8 << 20
	maxIngestDecompressed = 64 << 20
)

// errTooLarge marks a decompressed payload exceeding the ingest limit.
var errTooLarge = errors.New("payload too large")

// limitedReader errors (rather than silently truncating, as
// io.LimitReader would) when the stream holds MORE than n bytes.  A
// stream of exactly n bytes is within the limit: at the cap the reader
// probes the underlying stream for one more byte and reports EOF when
// none follows, so an at-limit payload is accepted, not 413'd.
type limitedReader struct {
	r io.Reader
	n int64
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		var probe [1]byte
		for {
			n, err := l.r.Read(probe[:])
			if n > 0 {
				return 0, errTooLarge
			}
			if err != nil {
				return 0, err // io.EOF: exactly at the limit, a clean end
			}
		}
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// decodeIngest parses and validates one JSON-lines ingest payload.  It
// is all-or-nothing: any malformed record rejects the whole batch, so a
// 400 never leaves a partial batch in the store — malformed label maps
// included.
//
// Three schema generations are accepted:
//
//	v3: {"source":"nodeA", "labels":{"job":"lbm"}, "metric":"bw", ...}
//	    — the structured label set rides as its own field and lands
//	    interned in Key.Labels.  An absent (or empty) labels field is
//	    the empty set, so v2 payloads keep their exact keys.
//	v2: {"source":"nodeA", "metric":"bw", ...} — source is a field and
//	    lands verbatim in Key.Source.
//	v1: {"metric":"nodeA/bw", ...} — the legacy prefix form, split by
//	    the SplitSourceMetric compat shim so old payloads land on the
//	    same store keys as their v2 equivalents.
//
// Samples come back with Labels unset; the validated wire label maps
// ride alongside (index-aligned) so the caller can screen them against
// its own constraints (the receiver's default-merge cap) and only then
// intern them — a rejected batch must leave no residue, not even in
// the process-wide label intern table.  sentAts carries each record's
// sent_at stamp (0 when absent), index-aligned too: the stamp is
// advisory latency metadata, so no value of it — zero, negative,
// far-future — ever rejects a batch; the receiver's skew histogram
// clamps instead.
func decodeIngest(r io.Reader) ([]Sample, []map[string]string, []float64, error) {
	dec := json.NewDecoder(r)
	var out []Sample
	var labelMaps []map[string]string
	var sentAts []float64
	for i := 0; ; i++ {
		var js jsonSample
		if err := dec.Decode(&js); err != nil {
			if err == io.EOF {
				return out, labelMaps, sentAts, nil
			}
			return nil, nil, nil, fmt.Errorf("record %d: %w", i, err)
		}
		scope, err := ParseScope(js.Scope)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("record %d: %w", i, err)
		}
		switch {
		case strings.TrimSpace(js.Metric) == "":
			return nil, nil, nil, fmt.Errorf("record %d: empty metric", i)
		case js.ID < 0:
			return nil, nil, nil, fmt.Errorf("record %d: negative id %d", i, js.ID)
		case math.IsNaN(js.Time) || math.IsInf(js.Time, 0) || js.Time < 0:
			return nil, nil, nil, fmt.Errorf("record %d: bad time %v", i, js.Time)
		case math.IsNaN(js.Value) || math.IsInf(js.Value, 0):
			return nil, nil, nil, fmt.Errorf("record %d: bad value %v", i, js.Value)
		}
		// Validate without interning: the batch may still be rejected by
		// a later record or the caller's merge screening, and a 400'd
		// batch must leave no trace — not even in the intern table.
		if err := CheckLabelMap(js.Labels); err != nil {
			return nil, nil, nil, fmt.Errorf("record %d: %w", i, err)
		}
		labelMaps = append(labelMaps, js.Labels)
		sentAts = append(sentAts, js.SentAt)
		// An explicit source field is stored verbatim — any label a v1
		// agent was free to configure keeps working.  Only the compat
		// shim below, guessing at a prefix, insists on a conservative
		// label shape.
		source, metric := js.Source, js.Metric
		if source == "" {
			// v1 compat shim: the only place in the suite that still
			// parses a source out of a metric name.
			source, metric, _ = SplitSourceMetric(js.Metric)
		}
		out = append(out, Sample{
			Source: source,
			Metric: metric,
			Scope:  scope,
			ID:     js.ID,
			Time:   js.Time,
			Value:  js.Value,
		})
	}
}

// ingestResponse is the /ingest JSON payload.
type ingestResponse struct {
	Accepted int `json:"accepted"`
}

func (h *HTTPSink) handleIngest(w http.ResponseWriter, r *http.Request) {
	if h.tRequests != nil {
		h.tRequests.Inc()
	}
	if r.Method != http.MethodPost {
		h.reject("method")
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if h.store == nil {
		http.Error(w, "no store attached", http.StatusNotImplemented)
		return
	}
	body := io.Reader(http.MaxBytesReader(w, r.Body, maxIngestCompressed))
	switch enc := r.Header.Get("Content-Encoding"); enc {
	case "gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			h.reject("gzip")
			http.Error(w, "bad gzip payload: "+err.Error(), http.StatusBadRequest)
			return
		}
		defer zr.Close()
		limit := h.maxDecompressed
		if limit <= 0 {
			limit = maxIngestDecompressed // zero-value sinks (tests, literals)
		}
		body = &limitedReader{r: zr, n: limit}
	case "", "identity":
	default:
		h.reject("encoding")
		http.Error(w, "unsupported content encoding "+enc, http.StatusUnsupportedMediaType)
		return
	}
	// Content negotiation: the v4 binary columnar format announces
	// itself via its Content-Type; everything else (including absent or
	// unknown types) is the JSON-lines path, which self-describes across
	// v1–v3.  The Content-Encoding handling above applies to both, so a
	// gzipped v4 body works too.
	decode := decodeIngest
	if ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";"); strings.TrimSpace(ct) == V4ContentType {
		decode = decodeV4
	}
	decodeStart := time.Now()
	samples, labelMaps, sentAts, err := decode(body)
	if h.tDecode != nil {
		h.tDecode.Observe(time.Since(decodeStart).Seconds())
	}
	if err != nil {
		status := http.StatusBadRequest
		reason := "decode"
		var tooBig *http.MaxBytesError
		if errors.Is(err, errTooLarge) || errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
			reason = "too_large"
		}
		h.reject(reason)
		http.Error(w, "bad ingest payload: "+err.Error(), status)
		return
	}
	if router := h.router.Load(); router != nil {
		samples, labelMaps, sentAts, err = router.Apply(samples, labelMaps, sentAts)
		if err != nil {
			h.reject("labels")
			http.Error(w, "bad ingest payload: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if err := h.applyIngestLabels(samples, labelMaps); err != nil {
		h.reject("labels")
		http.Error(w, "bad ingest payload: "+err.Error(), http.StatusBadRequest)
		return
	}
	// A pushed flush is dozens of samples over a handful of series:
	// intern each key once and append points through the handles instead
	// of paying the shard lookup per sample.
	appendStart := time.Now()
	var (
		lastKey Key
		handle  Series
		have    bool
	)
	for _, s := range samples {
		if k := s.Key(); !have || k != lastKey {
			handle, lastKey, have = h.store.Intern(k), k, true
		}
		handle.Append(Point{Time: s.Time, Value: s.Value})
	}
	if h.tAppend != nil {
		h.tAppend.Observe(time.Since(appendStart).Seconds())
	}
	h.mu.Lock()
	for _, s := range samples {
		h.setLatestLocked(s)
	}
	h.ingested += uint64(len(samples))
	h.mu.Unlock()
	if h.tAccepted != nil {
		h.tAccepted.Add(uint64(len(samples)))
		h.observeIngest(samples, sentAts)
	}
	// Re-push the accepted batch up the federation tree.  The samples
	// slice is this request's decode output and is not touched again
	// after this point, so handing it off without a copy is safe.
	if fp := h.forward.Load(); fp != nil && len(samples) > 0 {
		(*fp)(Batch{Collector: "forward", Time: samples[len(samples)-1].Time, Samples: samples})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ingestResponse{Accepted: len(samples)})
}

// observeIngest records per-source acceptance and, for records carrying
// a sent_at stamp, the end-to-end wire+queue latency and signed clock
// skew.  A far-future or ancient stamp lands in the histograms' edge
// buckets — clamped by construction, never rejected, never a panic.
func (h *HTTPSink) observeIngest(samples []Sample, sentAts []float64) {
	var recv float64
	if h.now != nil {
		recv = float64(h.now().UnixNano()) / 1e9
	} else {
		recv = float64(time.Now().UnixNano()) / 1e9
	}
	var (
		lastSource string
		si         *sourceInstruments
	)
	for i, s := range samples {
		if si == nil || s.Source != lastSource {
			si, lastSource = h.sourceInstr(s.Source), s.Source
		}
		if si == nil {
			return // not instrumented
		}
		si.samples.Inc()
		if i < len(sentAts) && sentAts[i] > 0 {
			delta := recv - sentAts[i]
			si.skew.Observe(delta)
			if delta < 0 {
				delta = 0 // a fast clock upstream is skew, not negative latency
			}
			si.wire.Observe(delta)
		}
	}
}

// maxMergeCacheEntries bounds the per-sink merge memoization: a fleet
// has a handful of distinct label sets, so hitting the bound means a
// high-cardinality (or hostile) pusher — reset rather than grow.
const maxMergeCacheEntries = 1024

// mergedLabelCount is the size of defaults ∪ m, computed on the raw
// wire map so the cap can be enforced before anything is interned.
func mergedLabelCount(defaults Labels, m map[string]string) int {
	n := defaults.Len()
	for name := range m {
		if _, ok := defaults.Get(name); !ok {
			n++
		}
	}
	return n
}

// applyIngestLabels screens each record's validated wire label map
// against the receiver's default-merge cap and only then interns it
// onto its sample, overlaying the defaults (sample wins per name) in
// one critical section per batch, memoized per incoming label set so a
// steady fleet costs a map hit per sample.  The screening runs before
// any interning and before any store append, so a 400 is all-or-nothing
// and leaves no residue — not even in the intern table.
func (h *HTTPSink) applyIngestLabels(samples []Sample, labelMaps []map[string]string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.ingestLabels.Empty() {
		for _, m := range labelMaps {
			if n := mergedLabelCount(h.ingestLabels, m); n > maxLabels {
				return fmt.Errorf("monitor: sample labels %q merged with the receiver defaults exceed the limit of %d labels", FormatLabelMap(m), maxLabels)
			}
		}
	}
	// A pushed batch is one agent's stream: consecutive records almost
	// always share one label map, so remember the previous record's
	// interned handle and skip MakeLabels (pairs alloc + sort + intern
	// mutex, all under h.mu) for equal maps.
	var (
		prevMap map[string]string
		prevLs  Labels
		have    bool
	)
	for i := range samples {
		m := labelMaps[i]
		if !have || !maps.Equal(m, prevMap) {
			prevLs, _ = MakeLabels(m) // validated during decode
			prevMap, have = m, true
		}
		ls := prevLs
		if h.ingestLabels.Empty() {
			samples[i].Labels = ls
			continue
		}
		merged, ok := h.mergeCache[ls]
		if !ok {
			merged = MergeLabels(h.ingestLabels, ls)
			if h.mergeCache == nil || len(h.mergeCache) >= maxMergeCacheEntries {
				h.mergeCache = map[Labels]Labels{}
			}
			h.mergeCache[ls] = merged
		}
		samples[i].Labels = merged
	}
	return nil
}

func (h *HTTPSink) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h.mu.RLock()
	batches, ingested := h.batches, h.ingested
	h.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"batches\":%d,\"ingested\":%d,\"uptime\":%q}\n",
		batches, ingested, time.Now().Format(time.RFC3339))
}
