package features

import (
	"strings"
	"testing"

	"likwid/internal/hwdef"
	"likwid/internal/msr"
)

func newTool(t *testing.T, archName string) *Tool {
	t.Helper()
	a, err := hwdef.Lookup(archName)
	if err != nil {
		t.Fatal(err)
	}
	tool, err := New(msr.NewSpace(a), a, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tool
}

func TestDefaultListingMatchesPaper(t *testing.T) {
	tool := newTool(t, "core2-65nm")
	out, err := tool.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CPU name:\tIntel Core 2 65nm processor",
		"CPU core id:\t0",
		"Fast-Strings: enabled",
		"Automatic Thermal Control: enabled",
		"Performance monitoring: enabled",
		"Hardware Prefetcher: enabled",
		"Branch Trace Storage: supported",
		"PEBS: supported",
		"Intel Enhanced SpeedStep: enabled",
		"MONITOR/MWAIT: supported",
		"Adjacent Cache Line Prefetch: enabled",
		"Limit CPUID Maxval: disabled",
		"XD Bit Disable: enabled",
		"DCU Prefetcher: enabled",
		"Intel Dynamic Acceleration: disabled",
		"IP Prefetcher: enabled",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q\n%s", want, out)
		}
	}
}

func TestDisableEnableRoundtrip(t *testing.T) {
	tool := newTool(t, "core2")
	// The paper's example: likwid-features -u CL_PREFETCHER.
	if err := tool.Disable("CL_PREFETCHER"); err != nil {
		t.Fatal(err)
	}
	on, err := tool.Enabled("CL_PREFETCHER")
	if err != nil {
		t.Fatal(err)
	}
	if on {
		t.Fatal("CL_PREFETCHER still enabled after -u")
	}
	out, _ := tool.Render()
	if !strings.Contains(out, "Adjacent Cache Line Prefetch: disabled") {
		t.Error("listing must show the disabled prefetcher")
	}
	if err := tool.Enable("CL_PREFETCHER"); err != nil {
		t.Fatal(err)
	}
	on, _ = tool.Enabled("CL_PREFETCHER")
	if !on {
		t.Error("CL_PREFETCHER must be enabled again")
	}
}

func TestDisableSetsMSRBit(t *testing.T) {
	a, _ := hwdef.Lookup("core2")
	space := msr.NewSpace(a)
	tool, err := New(space, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Disable("HW_PREFETCHER"); err != nil {
		t.Fatal(err)
	}
	dev, _ := space.Open(1)
	v, _ := dev.Read(msr.IA32MiscEnable)
	if v&(1<<hwdef.BitHWPrefetcher) == 0 {
		t.Error("disable must set the MISC_ENABLE disable bit")
	}
	// Core 0 is a different core: its register must be untouched.
	dev0, _ := space.Open(0)
	v0, _ := dev0.Read(msr.IA32MiscEnable)
	if v0&(1<<hwdef.BitHWPrefetcher) != 0 {
		t.Error("disable leaked to another core")
	}
}

func TestUnknownFeature(t *testing.T) {
	tool := newTool(t, "core2")
	if err := tool.Disable("WARP_DRIVE"); err == nil {
		t.Error("unknown feature must fail")
	}
	if _, err := tool.Enabled("WARP_DRIVE"); err == nil {
		t.Error("unknown feature must fail")
	}
}

func TestAMDRejected(t *testing.T) {
	a, _ := hwdef.Lookup("istanbul")
	if _, err := New(msr.NewSpace(a), a, 0); err == nil {
		t.Error("likwid-features must reject non-Intel processors")
	}
}

func TestToggleNamesFollowArchInventory(t *testing.T) {
	tool := newTool(t, "core2")
	names := tool.ToggleNames()
	if len(names) != 4 {
		t.Fatalf("core2 toggles = %v, want 4 prefetchers", names)
	}
	// Pentium M only has the L2 streamer.
	pm := newTool(t, "pentiumM")
	pmNames := pm.ToggleNames()
	if len(pmNames) != 1 || pmNames[0] != "HW_PREFETCHER" {
		t.Fatalf("pentiumM toggles = %v, want [HW_PREFETCHER]", pmNames)
	}
	// Features absent from the inventory are not togglable there.
	if err := pm.Disable("DCU_PREFETCHER"); err == nil {
		t.Error("pentiumM must not toggle the DCU prefetcher")
	}
}

func TestListIncludesTogglableFlags(t *testing.T) {
	tool := newTool(t, "core2")
	states, err := tool.List()
	if err != nil {
		t.Fatal(err)
	}
	var toggles int
	for _, s := range states {
		if s.Togglable {
			toggles++
			if s.Name == "" {
				t.Error("togglable feature without a name")
			}
		}
	}
	if toggles != 4 {
		t.Errorf("togglable rows = %d, want 4", toggles)
	}
}
