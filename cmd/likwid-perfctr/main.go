// likwid-perfctr measures performance counter metrics while a built-in
// workload runs — the wrapper mode of §II-A.  With -pin it combines with
// the pinning mechanism, as in the paper's example:
//
//	$ likwid-perfCtr -c 1 -g EVENTS likwid-pin -c 1 ./a.out
//
// Usage:
//
//	likwid-perfctr -c CPULIST -g GROUP|EVENTLIST [options] WORKLOAD
//
//	-a arch      node architecture (default westmereEP)
//	-c CPULIST   cores to measure, e.g. 0-3
//	-g SPEC      group name (FLOPS_DP, MEM, ...) or EVENT[:PMCn],... list
//	-m           marker mode: report the workload as a named region
//	-x           enable counter multiplexing (round-robin event sets)
//	-d SECONDS   timeline mode: print per-interval deltas of the first event
//	-pin LIST    pin the workload with the given core list first
//	-t TYPE      threading runtime of the workload: intel | gnu | pthreads
//	-n N         worker threads of the workload (default: measured cores)
//	-groups      list the groups available on the architecture
//
// WORKLOAD is triad[:elems], triad-gcc[:elems], jacobi:VARIANT[:size[:iters]]
// or sleep:SECONDS (whole-node monitoring, as in the paper's "sleep 1").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"likwid"
	"likwid/internal/cli"
	"likwid/internal/perfctr"
	"likwid/internal/pin"
	"likwid/internal/sched"
)

func main() {
	arch := flag.String("a", "westmereEP", "node architecture")
	cpuList := flag.String("c", "0", "cores to measure")
	groupSpec := flag.String("g", "FLOPS_DP", "event group or event list")
	markerMode := flag.Bool("m", false, "marker mode")
	multiplex := flag.Bool("x", false, "enable counter multiplexing")
	timeline := flag.Float64("d", 0, "timeline interval in seconds (0 = off)")
	pinList := flag.String("pin", "", "pin the workload to this core list")
	runtimeType := flag.String("t", "pthreads", "threading runtime (intel, gnu, pthreads)")
	threads := flag.Int("n", 0, "worker threads (default: number of measured cores)")
	listGroups := flag.Bool("groups", false, "list available groups")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "likwid-perfctr:", err)
		os.Exit(1)
	}

	node, err := likwid.Open(*arch)
	if err != nil {
		fail(err)
	}
	if *listGroups {
		fmt.Println(strings.Join(node.Groups(), "\n"))
		return
	}
	if flag.NArg() != 1 {
		fail(fmt.Errorf("need exactly one workload argument (triad, jacobi:..., sleep:...)"))
	}
	work, err := cli.ParseWorkload(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	cpus, err := pin.ParseCPUList(*cpuList)
	if err != nil {
		fail(err)
	}
	model, err := sched.ParseRuntime(*runtimeType)
	if err != nil {
		fail(err)
	}
	nThreads := *threads
	if nThreads == 0 {
		nThreads = len(cpus)
	}

	col, group, err := node.NewCollector(cpus, *groupSpec, likwid.CollectorOptions{Multiplex: *multiplex})
	if err != nil {
		fail(err)
	}
	var pinner *likwid.Pinner
	if *pinList != "" {
		pinner, err = node.NewPinner(*pinList, likwid.SkipMaskFor(model))
		if err != nil {
			fail(err)
		}
	}

	fmt.Print(perfctr.Header(node.Arch().ModelName, node.Arch().ClockMHz))
	if group != nil {
		fmt.Printf("Measuring group %s\n%s\n", group.Name, cli.Rule)
	}
	if err := col.Start(); err != nil {
		fail(err)
	}

	if *markerMode {
		mk, err := node.NewMarker(col, nThreads)
		if err != nil {
			fail(err)
		}
		id := mk.RegisterRegion("Workload")
		for tid := 0; tid < nThreads && tid < len(cpus); tid++ {
			if err := mk.StartRegion(tid, cpus[tid]); err != nil {
				fail(err)
			}
		}
		res, err := work.Run(node.M, nThreads, model, pinner)
		if err != nil {
			fail(err)
		}
		for tid := 0; tid < nThreads && tid < len(cpus); tid++ {
			if err := mk.StopRegion(tid, cpus[tid], id); err != nil {
				fail(err)
			}
		}
		if err := mk.Close(); err != nil {
			fail(err)
		}
		if err := col.Stop(); err != nil {
			fail(err)
		}
		fmt.Println(res.Summary)
		fmt.Print(mk.Report(group))
		return
	}

	var tl *perfctr.Timeline
	if *timeline > 0 {
		tl, err = perfctr.NewTimeline(col, *timeline)
		if err != nil {
			fail(err)
		}
	}
	res, err := work.Run(node.M, nThreads, model, pinner)
	if err != nil {
		fail(err)
	}
	if err := col.Stop(); err != nil {
		fail(err)
	}
	fmt.Println(res.Summary)
	if tl != nil {
		tl.Stop()
		// Print the first non-mandatory event's trace.
		events := col.EventNames()
		target := events[len(events)-1]
		out, err := tl.RenderTimeline(target)
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	}
	fmt.Print(perfctr.Report(col.Read(), group, node.Arch().ClockHz()))
}
