package pin

import (
	"fmt"
	"strings"

	"likwid/internal/apic"
	"likwid/internal/hwdef"
)

// Thread-domain core lists — the cpuset feature the paper announces for
// likwid-pin ("likwid-pin will be equipped with cpuset support, so that
// logical core IDs may be used when binding threads", §V).
//
// A domain expression selects *logical* core indices inside an affinity
// domain instead of raw OS processor IDs:
//
//	N:0-3        logical cores 0-3 of the node (physical cores first)
//	S1:0-2       logical cores 0-2 of socket 1
//	C0:0-1       logical cores of last-level-cache group 0
//	M0:0-3       logical cores of NUMA domain 0 (= socket on these nodes)
//
// Expressions chain with '@' to pin across domains:
//
//	S0:0-1@S1:0-1
//
// Inside every domain the logical order lists physical cores before SMT
// siblings, so "S0:0-5" on Westmere EP is exactly the socket's six physical
// cores no matter how the BIOS numbered the hardware threads — the
// numbering trap the paper's introduction describes.

// Domain is one affinity domain: a tag and its processors in logical order.
type Domain struct {
	Tag   string
	Procs []int
}

// Domains enumerates the affinity domains of an architecture: the node
// domain N, socket domains S0..Sn, last-level-cache domains C0..Cm, and
// NUMA/memory domains M0..Mn.
func Domains(a *hwdef.Arch) []Domain {
	threads := apic.Enumerate(a)

	// Logical order inside a domain: physical cores (SMT 0) first, in OS
	// processor order, then the SMT siblings.
	logical := func(filter func(apic.ThreadInfo) bool) []int {
		var procs []int
		for smt := 0; smt < a.ThreadsPerCore; smt++ {
			for _, ti := range threads {
				if ti.SMT == smt && filter(ti) {
					procs = append(procs, ti.Proc)
				}
			}
		}
		return procs
	}

	var out []Domain
	out = append(out, Domain{Tag: "N", Procs: logical(func(apic.ThreadInfo) bool { return true })})
	for s := 0; s < a.Sockets; s++ {
		socket := s
		out = append(out, Domain{
			Tag:   fmt.Sprintf("S%d", s),
			Procs: logical(func(ti apic.ThreadInfo) bool { return ti.Socket == socket }),
		})
	}
	// Last-level-cache groups: partition cores by their LLC instance.
	if llc, ok := a.LastLevelCache(); ok {
		coresPerGroup := llc.SharedBy / a.ThreadsPerCore
		if coresPerGroup < 1 {
			coresPerGroup = 1
		}
		groups := (a.Sockets * a.CoresPerSocket) / coresPerGroup
		for g := 0; g < groups; g++ {
			group := g
			out = append(out, Domain{
				Tag: fmt.Sprintf("C%d", g),
				Procs: logical(func(ti apic.ThreadInfo) bool {
					globalCore := ti.Socket*a.CoresPerSocket + ti.CoreIdx
					return globalCore/coresPerGroup == group
				}),
			})
		}
	}
	// Memory domains: one per socket on the modeled ccNUMA nodes.
	for s := 0; s < a.Sockets; s++ {
		socket := s
		out = append(out, Domain{
			Tag:   fmt.Sprintf("M%d", s),
			Procs: logical(func(ti apic.ThreadInfo) bool { return ti.Socket == socket }),
		})
	}
	return out
}

// DomainByTag finds one affinity domain.
func DomainByTag(a *hwdef.Arch, tag string) (Domain, error) {
	for _, d := range Domains(a) {
		if d.Tag == tag {
			return d, nil
		}
	}
	return Domain{}, fmt.Errorf("pin: unknown affinity domain %q", tag)
}

// ParseCPUExpression parses a -c argument that may be either a plain
// physical processor list ("0-3,8") or one or more '@'-chained domain
// expressions ("S0:0-1@S1:0-1").
func ParseCPUExpression(a *hwdef.Arch, expr string) ([]int, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return nil, fmt.Errorf("pin: empty cpu expression")
	}
	if !strings.Contains(expr, ":") {
		cpus, err := ParseCPUList(expr)
		if err != nil {
			return nil, err
		}
		for _, c := range cpus {
			if c >= a.HWThreads() {
				return nil, fmt.Errorf("pin: processor %d does not exist on %s (%d hardware threads)",
					c, a.Name, a.HWThreads())
			}
		}
		return cpus, nil
	}
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(expr, "@") {
		tag, list, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("pin: malformed domain expression %q", part)
		}
		domain, err := DomainByTag(a, strings.TrimSpace(tag))
		if err != nil {
			return nil, err
		}
		indices, err := ParseCPUList(list)
		if err != nil {
			return nil, fmt.Errorf("pin: domain %s: %w", domain.Tag, err)
		}
		for _, idx := range indices {
			if idx < 0 || idx >= len(domain.Procs) {
				return nil, fmt.Errorf("pin: logical core %d outside domain %s (size %d)",
					idx, domain.Tag, len(domain.Procs))
			}
			proc := domain.Procs[idx]
			if seen[proc] {
				return nil, fmt.Errorf("pin: processor %d selected twice in %q", proc, expr)
			}
			seen[proc] = true
			out = append(out, proc)
		}
	}
	return out, nil
}
