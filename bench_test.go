// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, regenerating the measurement and reporting its headline value as a
// custom metric.  Benchmarks use reduced sample counts to stay fast;
// cmd/likwid-repro runs the full 100-sample versions.
//
//	go test -bench=. -benchmem
package likwid_test

import (
	"testing"

	"likwid/internal/experiments"
	"likwid/internal/hwdef"
	"likwid/internal/workloads/kernels"
	"likwid/internal/workloads/stream"
)

// benchStream runs a STREAM figure spec with few samples and reports the
// saturated (max-thread) median bandwidth.
func benchStream(b *testing.B, spec experiments.StreamSpec) {
	b.Helper()
	spec.Samples = 10
	var last float64
	for i := 0; i < b.N; i++ {
		points, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = points[len(points)-1].Stats.Median
	}
	b.ReportMetric(last, "MB/s_median_maxthreads")
}

func BenchmarkFig04StreamIccUnpinned(b *testing.B)      { benchStream(b, experiments.Fig4) }
func BenchmarkFig05StreamIccPinned(b *testing.B)        { benchStream(b, experiments.Fig5) }
func BenchmarkFig06StreamIccScatter(b *testing.B)       { benchStream(b, experiments.Fig6) }
func BenchmarkFig07StreamGccUnpinned(b *testing.B)      { benchStream(b, experiments.Fig7) }
func BenchmarkFig08StreamGccPinned(b *testing.B)        { benchStream(b, experiments.Fig8) }
func BenchmarkFig09StreamIstanbulUnpinned(b *testing.B) { benchStream(b, experiments.Fig9) }
func BenchmarkFig10StreamIstanbulPinned(b *testing.B)   { benchStream(b, experiments.Fig10) }

func BenchmarkFig01Topology(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		out, err := experiments.Fig1Topology("westmereEP")
		if err != nil {
			b.Fatal(err)
		}
		n = len(out)
	}
	b.ReportMetric(float64(n), "report_bytes")
}

func BenchmarkFig02GroupMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2GroupMapping("core2", "FLOPS_DP"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig03PinMechanism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3PinMechanism(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11JacobiWavefront(b *testing.B) {
	var correct, wrong float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig11([]int{100, 200, 300, 400, 500}, 10)
		if err != nil {
			b.Fatal(err)
		}
		mid := points[2]
		correct, wrong = mid.WavefrontOneSock, mid.WavefrontSplit
	}
	b.ReportMetric(correct, "MLUPS_correct_N300")
	b.ReportMetric(wrong, "MLUPS_wrongpin_N300")
}

func BenchmarkTable02JacobiCounters(b *testing.B) {
	var blockedVolume, blockedMLUPS float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII()
		if err != nil {
			b.Fatal(err)
		}
		blockedVolume = rows[2].VolumeGB
		blockedMLUPS = rows[2].MLUPS
	}
	b.ReportMetric(blockedVolume, "GB_blocked")
	b.ReportMetric(blockedMLUPS, "MLUPS_blocked")
}

func BenchmarkTableMarkerOutput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MarkerListing(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableEventGroups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EventGroupTable("westmereEP"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeaturesListing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FeaturesListing(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

func BenchmarkAblationMultiplex(b *testing.B) {
	var longRunErr float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationMultiplex()
		if err != nil {
			b.Fatal(err)
		}
		longRunErr = points[len(points)-1].RelError
	}
	b.ReportMetric(longRunErr*100, "%err_longrun")
}

func BenchmarkAblationSocketLock(b *testing.B) {
	var overcount float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSocketLock()
		if err != nil {
			b.Fatal(err)
		}
		overcount = r.Overcount
	}
	b.ReportMetric(overcount, "x_naive_overcount")
}

func BenchmarkAblationPrefetchers(b *testing.B) {
	var withPF, withoutPF float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationPrefetchers()
		if err != nil {
			b.Fatal(err)
		}
		withPF = points[0].BandwidthMBs
		withoutPF = points[len(points)-1].BandwidthMBs
	}
	b.ReportMetric(withPF, "MB/s_prefetch_on")
	b.ReportMetric(withoutPF, "MB/s_prefetch_off")
}

func BenchmarkAblationPlacement(b *testing.B) {
	var spread, compact float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationPlacement(6, 10)
		if err != nil {
			b.Fatal(err)
		}
		spread = points[0].Stats.Median
		compact = points[1].Stats.Median
	}
	b.ReportMetric(spread, "MB/s_spread")
	b.ReportMetric(compact, "MB/s_compact")
}

func BenchmarkAblationSMTOrder(b *testing.B) {
	var phys, sib float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSMTOrder()
		if err != nil {
			b.Fatal(err)
		}
		phys, sib = r.PhysicalFirstMBs, r.SiblingFirstMBs
	}
	b.ReportMetric(phys, "MB/s_physfirst")
	b.ReportMetric(sib, "MB/s_smtfirst")
}

// --- Microbenchmarks of the substrates ------------------------------------

func BenchmarkCacheSimStreaming(b *testing.B) {
	a := hwdef.Core2Quad
	k, err := kernels.ByName("load")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := kernels.Run(a, k, 1<<20, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleStreamSample(b *testing.B) {
	arch := hwdef.WestmereEP
	for i := 0; i < b.N; i++ {
		_, err := stream.Run(stream.Config{
			Arch: arch, Compiler: stream.ICC, Threads: 12,
			Mode: stream.PinScatter, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
