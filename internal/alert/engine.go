package alert

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/telemetry"
)

// Options wire an engine to its inputs and outputs.
type Options struct {
	// Store is the evaluated time-series store (required).  Firing and
	// resolved transitions are also recorded into it as "alert/<name>"
	// series (value 1 on firing, 0 on resolve), so alert history is
	// windowable and retained like any metric.
	Store *monitor.Store
	// Clock drives the per-rule evaluation cadence; defaults to the wall
	// clock (fake clocks make the state machine testable).
	Clock monitor.Clock
	// DefaultEvery is the evaluation cadence of rules without their own
	// "every" clause (default 10 s).
	DefaultEvery time.Duration
	// Fanout receives firing/resolved events (optional).
	Fanout *Fanout
	// Notify, when set, receives events instead of Fanout — the hook for
	// delivery stages in front of the fanout, e.g. a Grouper coalescing
	// per-instance events into one incident per rule and state.
	Notify Publisher
	// StaleAfter resolves a firing instance whose series' simulated time
	// has stopped advancing for this much wall time — a decommissioned
	// fleet agent must not fire forever off its frozen last window.  The
	// parked instance stays suppressed (no re-fire off the same frozen
	// data) and restarts its lifecycle when the series moves again.
	// Zero disables staleness handling.
	StaleAfter time.Duration
	// OnError observes per-rule evaluation problems (optional).
	OnError func(rule string, err error)
	// Telemetry, when set, instruments evaluation: per-eval duration
	// histogram, eval counter, and firing/resolved transition counters.
	Telemetry *telemetry.Registry
}

// instKey deduplicates alert instances: one lifecycle per (rule, series).
type instKey struct {
	rule string
	key  monitor.Key
}

// instance is one rule×series lifecycle.
type instance struct {
	state       State
	since       float64   // simulated time the condition first held
	firingSince float64   // simulated time of the firing transition
	value       float64   // newest expression value
	updated     float64   // simulated time of the newest evaluation
	lastData    float64   // newest simulated time seen for the series
	lastAdvance time.Time // wall time lastData last moved forward
	stale       bool      // parked: resolved by staleness, data frozen
}

// ruleState is one rule's evaluation bookkeeping.
type ruleState struct {
	rule     *Rule
	evals    uint64
	lastEval time.Time // wall time of the newest evaluation
	lastErr  string

	// Cached selector resolution: the matched keys at store index
	// generation resGen.  Valid until the generation moves (a series was
	// created) or the rule's spec changes on reload — so steady-state
	// evaluation of a warm store does zero matching work and zero
	// allocation.  resKeys is read-only once published here.
	resKeys  []monitor.Key
	resGen   uint64
	resValid bool

	// window is the rule's reusable point buffer for WindowInto.  An
	// evaluation takes it (leaving nil) and returns it when done, so
	// concurrent EvalNow+Run evaluations never share a buffer.
	window []monitor.Point
}

// Engine evaluates parsed rules against the store on a per-rule wall
// cadence and drives the pending → firing → resolved state machine.
// Notifications happen only on transitions (pending that recovers before
// its "for" duration is silently cancelled), so a firing alert is
// delivered exactly once per episode.  Reload swaps the rule set while
// Run keeps going — the hot-reload path behind likwid-agent's SIGHUP
// handler and POST /rules/reload.
type Engine struct {
	opts Options

	mu    sync.Mutex
	rules []*Rule
	insts map[instKey]*instance
	state map[string]*ruleState

	reload chan struct{} // signals Run to restart its rule goroutines

	// Telemetry instruments, resolved once at construction (nil without
	// Options.Telemetry; the eval path nil-checks).
	tEvals       *telemetry.Counter
	tEvalSec     *telemetry.Histogram
	tTransitions map[string]*telemetry.Counter // by event state
	tResHit      *telemetry.Counter            // rule resolutions served from cache
	tResCold     *telemetry.Counter            // rule resolutions that hit the index
}

// NewEngine creates an engine over the given rules.
func NewEngine(opts Options, rules []*Rule) (*Engine, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("alert: engine needs a store")
	}
	if opts.Clock == nil {
		opts.Clock = monitor.RealClock
	}
	if opts.DefaultEvery <= 0 {
		opts.DefaultEvery = 10 * time.Second
	}
	e := &Engine{
		opts:   opts,
		rules:  rules,
		insts:  map[instKey]*instance{},
		state:  map[string]*ruleState{},
		reload: make(chan struct{}, 1),
	}
	for _, r := range rules {
		e.state[r.Name] = &ruleState{rule: r}
	}
	if reg := opts.Telemetry; reg != nil {
		e.tEvals = reg.Counter("likwid_alert_evals_total")
		e.tEvalSec = reg.Histogram("likwid_alert_eval_seconds", telemetry.DurationBuckets)
		e.tTransitions = map[string]*telemetry.Counter{
			EventStateFiring:   reg.Counter("likwid_alert_transitions_total", "state", EventStateFiring),
			EventStateResolved: reg.Counter("likwid_alert_transitions_total", "state", EventStateResolved),
		}
		e.tResHit = reg.Counter("likwid_alert_resolve_total", "result", "hit")
		e.tResCold = reg.Counter("likwid_alert_resolve_total", "result", "cold")
		reg.GaugeFunc("likwid_alert_rules", func() float64 { return float64(len(e.Rules())) })
	}
	return e, nil
}

// Rules returns a snapshot of the engine's rules in file order.
func (e *Engine) Rules() []*Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Rule(nil), e.rules...)
}

// Reload atomically swaps the rule set.  Validation is the caller's job
// (ParseRules): a file that fails to parse is simply never handed to
// Reload, so the old set stays live.  Rules whose rendered spec is
// unchanged keep their instances and bookkeeping — a hot reload does
// not re-fire active alerts; removed or edited rules drop theirs (an
// evaluation already in flight for an edited rule may still land one
// instance under its old spec; the next evaluation converges it).  A
// running Run loop restarts its goroutines on the new set — unless the
// whole set renders spec-identical, in which case the evaluation timers
// keep running, so a config-management loop re-posting the same file
// every few seconds cannot starve rules of their cadence.
func (e *Engine) Reload(rules []*Rule) {
	e.mu.Lock()
	oldSpec := make(map[string]string, len(e.rules))
	for _, r := range e.rules {
		oldSpec[r.Name] = r.String()
	}
	newState := make(map[string]*ruleState, len(rules))
	unchanged := map[string]bool{}
	identical := len(rules) == len(e.rules)
	for i, r := range rules {
		unchanged[r.Name] = oldSpec[r.Name] == r.String()
		if st, ok := e.state[r.Name]; ok {
			st.rule = r
			if !unchanged[r.Name] {
				// An edited selector must re-resolve; the cached key set
				// belongs to the old spec.
				st.resValid = false
			}
			newState[r.Name] = st
		} else {
			newState[r.Name] = &ruleState{rule: r}
		}
		identical = identical && e.rules[i].Name == r.Name && unchanged[r.Name]
	}
	for id := range e.insts {
		if !unchanged[id.rule] {
			delete(e.insts, id)
		}
	}
	e.rules = rules
	e.state = newState
	e.mu.Unlock()
	if identical {
		return // same specs, same cadences: keep the running timers
	}
	select {
	case e.reload <- struct{}{}:
	default: // a restart is already pending
	}
}

// Run evaluates every rule on its cadence until the context is
// cancelled, then returns once all rule goroutines have stopped.  A
// Reload restarts the goroutines on the new rule set without dropping
// out of Run.  The fanout is not closed: the caller owns its lifecycle.
func (e *Engine) Run(ctx context.Context) {
	for {
		rctx, cancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		for _, r := range e.Rules() {
			wg.Add(1)
			go func(r *Rule) {
				defer wg.Done()
				every := r.Every
				if every <= 0 {
					every = e.opts.DefaultEvery
				}
				for {
					select {
					case <-rctx.Done():
						return
					case <-e.opts.Clock.After(every):
					}
					e.evalRule(r)
				}
			}(r)
		}
		select {
		case <-ctx.Done():
			cancel()
			wg.Wait()
			return
		case <-e.reload:
			cancel()
			wg.Wait()
		}
	}
}

// EvalNow evaluates every rule once, synchronously — the one-shot entry
// for tests and callers that drive their own cadence.
func (e *Engine) EvalNow() {
	for _, r := range e.Rules() {
		e.evalRule(r)
	}
}

// resolveKeys returns the rule's matched series keys, served from the
// per-rule cache while the store's index generation holds still (new
// series are rare after warm-up, so steady-state evaluation does zero
// matching work), resolved through the store's selector index when it
// moves.  It also hands out the rule's reusable window buffer; the
// caller returns it via finishEval.
//
// The generation is read BEFORE resolving: a series created mid-resolve
// may be missed by this Select, but the store bumps the generation
// before such a miss is possible, so the cache records a stale
// generation and the next evaluation re-resolves.
func (e *Engine) resolveKeys(r *Rule) ([]monitor.Key, []monitor.Point) {
	gen := e.opts.Store.IndexGen()
	e.mu.Lock()
	st := e.state[r.Name]
	if st != nil && st.resValid && st.resGen == gen {
		keys := st.resKeys
		window := st.window
		st.window = nil // this evaluation owns the buffer now
		e.mu.Unlock()
		if e.tResHit != nil {
			e.tResHit.Inc()
		}
		return keys, window
	}
	e.mu.Unlock()
	keys := e.opts.Store.Select(monitor.Selector{
		Source: r.Source,
		Metric: r.Metric,
		Labels: r.Matchers,
		Scope:  r.Scope,
		ID:     r.ID,
		AnyID:  r.ID == AllIDs,
	})
	// Drop alert history series in place: a wildcard rule must not
	// alert on its own output.
	kept := keys[:0]
	for _, k := range keys {
		if !strings.HasPrefix(k.Metric, "alert/") {
			kept = append(kept, k)
		}
	}
	keys = kept
	if e.tResCold != nil {
		e.tResCold.Inc()
	}
	e.mu.Lock()
	var window []monitor.Point
	if st := e.state[r.Name]; st != nil {
		st.resKeys = keys
		st.resGen = gen
		st.resValid = true
		window = st.window
		st.window = nil
	}
	e.mu.Unlock()
	return keys, window
}

// finishEval records one evaluation's bookkeeping and returns the
// window buffer to the rule's scratch slot.
func (e *Engine) finishEval(r *Rule, evalErr error, window []monitor.Point) {
	e.mu.Lock()
	st := e.state[r.Name]
	if st == nil {
		// The rule was reloaded away while this evaluation ran; its
		// bookkeeping is gone and nothing is left to record.
		e.mu.Unlock()
		return
	}
	st.evals++
	st.lastEval = e.opts.Clock.Now()
	st.lastErr = ""
	if evalErr != nil {
		st.lastErr = evalErr.Error()
	}
	if st.window == nil && window != nil {
		st.window = window
	}
	e.mu.Unlock()
	if evalErr != nil && e.opts.OnError != nil {
		e.opts.OnError(r.Name, evalErr)
	}
}

// evalRule runs one evaluation of one rule against the store.
func (e *Engine) evalRule(r *Rule) {
	if e.tEvals != nil {
		e.tEvals.Inc()
		start := time.Now()
		defer func() { e.tEvalSec.Observe(time.Since(start).Seconds()) }()
	}
	keys, window := e.resolveKeys(r)

	var evalErr error
	if len(keys) == 0 {
		evalErr = fmt.Errorf("no series matches %s(%s, %s, ...)", r.Fn, r.selector(), r.Scope)
	} else if r.Fn == FnImbalance {
		window = e.evalImbalance(r, keys, window)
	} else {
		for _, k := range keys {
			window = e.evalSeries(r, k, window)
		}
	}
	e.finishEval(r, evalErr, window)
}

// evalSeries evaluates avg/min/max/rate over one matched series, windowing
// into (and returning) the rule's reusable point buffer.
func (e *Engine) evalSeries(r *Rule, k monitor.Key, window []monitor.Point) []monitor.Point {
	latest, ok := e.opts.Store.Latest(k)
	if !ok {
		return window
	}
	pts := e.opts.Store.WindowInto(k, latest.Time-r.Lookback, -1, window)
	if pts == nil {
		return window
	}
	value, ok := windowValue(r.Fn, pts)
	if !ok {
		return pts
	}
	e.advance(r, k, k.Metric, value, latest.Time)
	return pts
}

// evalImbalance evaluates the cross-series spread: (max - min) / |mean|
// of the matched series' window averages.  One instance per rule, keyed
// by the selector.  Returns the reused window buffer.
func (e *Engine) evalImbalance(r *Rule, keys []monitor.Key, window []monitor.Point) []monitor.Point {
	var avgs []float64
	simNow := math.Inf(-1)
	for _, k := range keys {
		latest, ok := e.opts.Store.Latest(k)
		if !ok {
			continue
		}
		pts := e.opts.Store.WindowInto(k, latest.Time-r.Lookback, -1, window)
		if pts != nil {
			window = pts
		}
		avg, ok := windowValue(FnAvg, pts)
		if !ok {
			continue
		}
		avgs = append(avgs, avg)
		if latest.Time > simNow {
			simNow = latest.Time
		}
	}
	if len(avgs) == 0 {
		return window
	}
	minV, maxV, sum := avgs[0], avgs[0], 0.0
	for _, v := range avgs {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
		sum += v
	}
	mean := sum / float64(len(avgs))
	// The spread is normalized by |mean|, falling back to the magnitude
	// midpoint when signed members cancel to a zero mean — the value must
	// stay finite: events and /alerts are JSON, which cannot carry Inf.
	var value float64
	if maxV != minV {
		den := math.Abs(mean)
		if den == 0 {
			den = (math.Abs(maxV) + math.Abs(minV)) / 2
		}
		value = (maxV - minV) / den
	}
	e.advance(r, monitor.Key{Metric: r.Metric, Scope: r.Scope, ID: 0}, r.Metric, value, simNow)
	return window
}

// windowValue reduces a window to the rule function's value; ok is false
// when the window cannot support the function (empty, or a rate over a
// single instant).
func windowValue(fn Fn, pts []monitor.Point) (float64, bool) {
	if len(pts) == 0 {
		return 0, false
	}
	switch fn {
	case FnAvg, FnImbalance:
		sum := 0.0
		for _, p := range pts {
			sum += p.Value
		}
		return sum / float64(len(pts)), true
	case FnMin:
		v := pts[0].Value
		for _, p := range pts[1:] {
			v = math.Min(v, p.Value)
		}
		return v, true
	case FnMax:
		v := pts[0].Value
		for _, p := range pts[1:] {
			v = math.Max(v, p.Value)
		}
		return v, true
	case FnRate:
		first, last := pts[0], pts[len(pts)-1]
		if last.Time <= first.Time {
			return 0, false
		}
		return (last.Value - first.Value) / (last.Time - first.Time), true
	}
	return 0, false
}

// advance moves one instance through the state machine given the newest
// expression value at simulated time simNow.
func (e *Engine) advance(r *Rule, k monitor.Key, metric string, value, simNow float64) {
	cond := r.Cmp.holds(value, r.Threshold)
	id := instKey{rule: r.Name, key: k}
	now := e.opts.Clock.Now()

	e.mu.Lock()
	if _, live := e.state[r.Name]; !live {
		// The rule was reloaded away while this evaluation was running:
		// publishing its transition or re-inserting an instance would
		// resurrect a rule the operator just deleted.
		e.mu.Unlock()
		return
	}
	inst := e.insts[id]
	var fire, resolve bool
	var firingSince float64
	startPending := func() {
		inst.state = StatePending
		inst.since = simNow
		inst.lastData = simNow
		inst.lastAdvance = now
		if simNow-inst.since >= r.For {
			inst.state = StateFiring
			inst.firingSince = simNow
			fire = true
		}
	}
	switch {
	case cond && inst == nil:
		inst = &instance{value: value, updated: simNow}
		e.insts[id] = inst
		startPending()
	case cond && inst.stale:
		// Parked by staleness: stay suppressed on frozen data; restart
		// the lifecycle from pending once the series moves again.
		if simNow > inst.lastData {
			inst.stale = false
			inst.value = value
			inst.updated = simNow
			startPending()
		}
	case cond:
		inst.value = value
		inst.updated = simNow
		switch {
		case simNow > inst.lastData:
			inst.lastData = simNow
			inst.lastAdvance = now
		case e.opts.StaleAfter > 0 && now.Sub(inst.lastAdvance) >= e.opts.StaleAfter:
			// The series' simulated time froze: resolve a firing alert
			// instead of firing forever off the last window, and park the
			// instance so it cannot re-fire until data resumes.
			resolve = inst.state == StateFiring
			firingSince = inst.firingSince
			inst.stale = true
		}
		if !inst.stale && inst.state == StatePending && simNow-inst.since >= r.For {
			inst.state = StateFiring
			inst.firingSince = simNow
			fire = true
		}
	case inst != nil:
		// Condition recovered: a firing alert resolves (notified); a
		// pending one is cancelled silently — that is the dedup guarantee
		// against flapping below the "for" horizon.  A stale instance
		// already resolved when it was parked.
		resolve = inst.state == StateFiring && !inst.stale
		firingSince = inst.firingSince
		delete(e.insts, id)
	}
	e.mu.Unlock()

	if fire {
		e.transition(r, k, metric, EventStateFiring, value, simNow, 0)
	}
	if resolve {
		e.transition(r, k, metric, EventStateResolved, value, simNow, firingSince)
	}
}

// transition publishes one firing/resolved event and records it into the
// store as the rule's history series.
func (e *Engine) transition(r *Rule, k monitor.Key, metric, state string, value, simNow, since float64) {
	ev := Event{
		Rule:      r.Name,
		State:     state,
		Source:    k.Source,
		Metric:    metric,
		Scope:     k.Scope.String(),
		ID:        k.ID,
		Labels:    k.Labels.Map(),
		Value:     value,
		Threshold: r.Threshold,
		Time:      simNow,
		Since:     since,
		Spec:      r.String(),
	}
	if c := e.tTransitions[state]; c != nil {
		c.Inc()
	}
	switch {
	case e.opts.Notify != nil:
		e.opts.Notify.Publish(ev)
	case e.opts.Fanout != nil:
		e.opts.Fanout.Publish(ev)
	}
	// History series: one per rule, carrying the matched series' source
	// and label set as their own Key dimensions (a receiver's fleet rule
	// keeps one history per agent and per label set) and split further
	// by matched metric when a wildcard selector can hit several metrics
	// of the same scope/id.
	name := "alert/" + r.Name
	if r.Fn != FnImbalance && r.Metric != metric {
		name += "/" + metric
	}
	v := 0.0
	if state == EventStateFiring {
		v = 1
	}
	histKey := monitor.Key{Source: k.Source, Metric: name, Scope: k.Scope, ID: k.ID, Labels: k.Labels}
	// Transition series are sparse 0/1 steps: compact them by last value
	// so a downsampled bucket reads as the state at its end, never a
	// 0.5 average of a fire/resolve pair.
	e.opts.Store.SetCompaction(histKey, monitor.CompactLast)
	e.opts.Store.Append(histKey, monitor.Point{Time: simNow, Value: v})
}

// InstanceStatus is one active alert instance in API shape.
type InstanceStatus struct {
	Rule        string            `json:"rule"`
	State       string            `json:"state"`
	Source      string            `json:"source,omitempty"`
	Metric      string            `json:"metric"`
	Scope       string            `json:"scope"`
	ID          int               `json:"id"`
	Labels      map[string]string `json:"labels,omitempty"`
	Value       float64           `json:"value"`
	Threshold   float64           `json:"threshold"`
	Since       float64           `json:"since"`
	FiringSince float64           `json:"firing_since,omitempty"`
	Updated     float64           `json:"updated"`
	Spec        string            `json:"spec"`
}

// Alerts snapshots the active (pending or firing) instances, sorted by
// rule, source, metric, scope, id, labels.
func (e *Engine) Alerts() []InstanceStatus {
	type row struct {
		st     InstanceStatus
		labels string // canonical label encoding, the final sort key
	}
	e.mu.Lock()
	byName := map[string]*Rule{}
	for _, r := range e.rules {
		byName[r.Name] = r
	}
	rows := make([]row, 0, len(e.insts))
	for id, inst := range e.insts {
		if inst.stale {
			continue // parked: resolved, waiting for the series to move
		}
		r := byName[id.rule]
		if r == nil {
			continue // reloaded away between eval and snapshot
		}
		rows = append(rows, row{labels: id.key.Labels.String(), st: InstanceStatus{
			Rule:        id.rule,
			State:       inst.state.String(),
			Source:      id.key.Source,
			Metric:      id.key.Metric,
			Scope:       id.key.Scope.String(),
			ID:          id.key.ID,
			Labels:      id.key.Labels.Map(),
			Value:       inst.value,
			Threshold:   r.Threshold,
			Since:       inst.since,
			FiringSince: inst.firingSince,
			Updated:     inst.updated,
			Spec:        r.String(),
		}})
	}
	e.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].st, rows[j].st
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return rows[i].labels < rows[j].labels
	})
	out := make([]InstanceStatus, len(rows))
	for i, r := range rows {
		out[i] = r.st
	}
	return out
}

// RuleStatus is one rule's bookkeeping in API shape.
type RuleStatus struct {
	Name      string `json:"name"`
	Spec      string `json:"spec"`
	Every     string `json:"every"`
	Evals     uint64 `json:"evals"`
	LastEval  string `json:"last_eval,omitempty"` // RFC 3339 wall time
	LastError string `json:"last_error,omitempty"`
	Pending   int    `json:"pending"`
	Firing    int    `json:"firing"`
}

// RuleStatuses snapshots per-rule bookkeeping in file order.
func (e *Engine) RuleStatuses() []RuleStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RuleStatus, 0, len(e.rules))
	for _, r := range e.rules {
		st := e.state[r.Name]
		every := r.Every
		if every <= 0 {
			every = e.opts.DefaultEvery
		}
		rs := RuleStatus{
			Name:      r.Name,
			Spec:      r.String(),
			Every:     every.String(),
			Evals:     st.evals,
			LastError: st.lastErr,
		}
		if !st.lastEval.IsZero() {
			rs.LastEval = st.lastEval.Format(time.RFC3339)
		}
		for id, inst := range e.insts {
			if id.rule != r.Name || inst.stale {
				continue
			}
			switch inst.state {
			case StatePending:
				rs.Pending++
			case StateFiring:
				rs.Firing++
			}
		}
		out = append(out, rs)
	}
	return out
}
