package perfctr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// The derived-metric formula engine.  Group metrics are arithmetic over
// event counts and the pseudo-variables "time" (region runtime in seconds)
// and "clock" (core clock in Hz), e.g.
//
//	1.0E-06*(FP_COMP_OPS_EXE_SSE_FP_PACKED*2+FP_COMP_OPS_EXE_SSE_FP_SCALAR)/time
//
// The grammar is a conventional precedence-climbing expression language:
//
//	expr   = term  { ("+"|"-") term }
//	term   = unary { ("*"|"/") unary }
//	unary  = "-" unary | primary
//	primary= number | identifier | "(" expr ")"
//
// Identifiers are event names ([A-Za-z_][A-Za-z0-9_]*); numbers accept
// scientific notation (1.0E-06).

type exprNode interface {
	eval(env map[string]float64) (float64, error)
}

type numNode float64

func (n numNode) eval(map[string]float64) (float64, error) { return float64(n), nil }

type varNode string

func (v varNode) eval(env map[string]float64) (float64, error) {
	val, ok := env[string(v)]
	if !ok {
		return 0, fmt.Errorf("perfctr: formula references unknown value %q", string(v))
	}
	return val, nil
}

type binNode struct {
	op   byte
	l, r exprNode
}

func (b binNode) eval(env map[string]float64) (float64, error) {
	l, err := b.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, nil // counters at zero: report 0, not NaN
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("perfctr: unknown operator %q", string(b.op))
}

type negNode struct{ x exprNode }

func (n negNode) eval(env map[string]float64) (float64, error) {
	v, err := n.x.eval(env)
	return -v, err
}

// Expr is a compiled metric formula.
type Expr struct {
	src  string
	root exprNode
}

// CompileExpr parses a formula once; Eval can then run it repeatedly.
func CompileExpr(src string) (*Expr, error) {
	p := &exprParser{src: src}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("perfctr: trailing input %q in formula %q", p.src[p.pos:], src)
	}
	return &Expr{src: src, root: root}, nil
}

// Eval computes the formula against an environment of event counts and
// pseudo-variables.  NaN and infinities collapse to 0 for display, matching
// the tool's behaviour on empty counters.
func (e *Expr) Eval(env map[string]float64) (float64, error) {
	v, err := e.root.eval(env)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, nil
	}
	return v, nil
}

// Vars lists the identifiers the formula references.
func (e *Expr) Vars() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(n exprNode)
	walk = func(n exprNode) {
		switch t := n.(type) {
		case varNode:
			if !seen[string(t)] {
				seen[string(t)] = true
				out = append(out, string(t))
			}
		case binNode:
			walk(t.l)
			walk(t.r)
		case negNode:
			walk(t.x)
		}
	}
	walk(e.root)
	return out
}

// String returns the source formula.
func (e *Expr) String() string { return e.src }

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) parseExpr() (exprNode, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		if op != '+' && op != '-' {
			return left, nil
		}
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = binNode{op: op, l: left, r: right}
	}
}

func (p *exprParser) parseTerm() (exprNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		if op != '*' && op != '/' {
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = binNode{op: op, l: left, r: right}
	}
}

func (p *exprParser) parseUnary() (exprNode, error) {
	if p.peek() == '-' {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return negNode{x: x}, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (exprNode, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("perfctr: missing ')' in formula %q", p.src)
		}
		p.pos++
		return inner, nil
	case c >= '0' && c <= '9' || c == '.':
		return p.parseNumber()
	case unicode.IsLetter(rune(c)) || c == '_':
		return p.parseIdent(), nil
	case c == 0:
		return nil, fmt.Errorf("perfctr: unexpected end of formula %q", p.src)
	default:
		return nil, fmt.Errorf("perfctr: unexpected character %q in formula %q", string(c), p.src)
	}
}

func (p *exprParser) parseNumber() (exprNode, error) {
	p.skipSpace()
	start := p.pos
	seenExp := false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c >= '0' && c <= '9' || c == '.':
			p.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			p.pos++
			if p.pos < len(p.src) && (p.src[p.pos] == '+' || p.src[p.pos] == '-') {
				p.pos++
			}
		default:
			goto done
		}
	}
done:
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return nil, fmt.Errorf("perfctr: bad number %q in formula %q", p.src[start:p.pos], p.src)
	}
	return numNode(v), nil
}

func (p *exprParser) parseIdent() exprNode {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
			p.pos++
			continue
		}
		break
	}
	return varNode(strings.TrimSpace(p.src[start:p.pos]))
}
