// Package perfctr is the core of likwid-perfCtr: it programs hardware
// performance counters through the simulated MSR device files, measures any
// set of cores simultaneously, resolves preconfigured event groups with
// derived metrics, multiplexes event sets larger than the counter
// inventory, and applies socket locks so per-socket (uncore) events are
// measured and attributed exactly once per socket.
//
// Counting is strictly core-based, not process-based (§II-A of the paper):
// the collector reads whatever the cores' counters accumulated, no matter
// which task caused the events.  Pinning (internal/pin) is what gives the
// numbers meaning.
package perfctr

import (
	"fmt"
	"sort"
	"strings"

	"likwid/internal/hwdef"
	"likwid/internal/machine"
	"likwid/internal/msr"
)

// EventSpec is one command-line event selection, e.g.
// "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0".
type EventSpec struct {
	Event   string
	Counter string // "PMC<n>", "FIXC<n>", "UPMC<n>", or "" for auto
}

// ParseEventList parses the -g event string of likwid-perfCtr:
// comma-separated EVENT[:COUNTER] items.
func ParseEventList(s string) ([]EventSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("perfctr: empty event list")
	}
	var out []EventSpec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.SplitN(item, ":", 2)
		spec := EventSpec{Event: parts[0]}
		if len(parts) == 2 {
			spec.Counter = parts[1]
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("perfctr: empty event list")
	}
	return out, nil
}

// entry is one event scheduled on one counter slot.
type entry struct {
	Name string
	Ev   hwdef.Event
	Slot int
}

// eventSet is one multiplex round: the events countable simultaneously.
type eventSet struct {
	pmc    []entry
	uncore []entry
}

// Collector measures a set of events on a set of cores of one machine.
type Collector struct {
	M    *machine.Machine
	cpus []int

	fixed   []entry // counted in every set (Intel fixed counters)
	sets    []eventSet
	current int

	socketLeader map[int]int // socket -> leader cpu (socket lock)

	active      bool
	startTime   float64
	setActive   []float64 // accumulated active seconds per set
	lastSwitch  float64
	muxInterval float64
	acc         map[string][]float64 // event -> per-cpu accumulated counts
	order       []string             // event display order
}

// Options configure a Collector.
type Options struct {
	// Multiplex allows more events than counters by round-robin rotation
	// of event sets (the -x mode); Interval is the rotation period in
	// simulated seconds (default 10 ms).
	Multiplex   bool
	MuxInterval float64
}

// NewCollector schedules the requested events onto counters for the given
// cores.  Scheduling rules mirror the real tool:
//
//   - INSTR_RETIRED_ANY and CPU_CLK_UNHALTED_CORE are always counted: on
//     Intel they occupy the unassignable fixed counters, on AMD they take
//     programmable slots.
//   - Uncore events take per-socket counters; a socket lock designates the
//     lowest measured core of each socket to program and read them, so
//     threaded measurements cannot double-count shared resources.
//   - Without multiplexing, overflowing the counter inventory is an error;
//     with it, events split into round-robin sets.
func NewCollector(m *machine.Machine, cpus []int, specs []EventSpec, opts Options) (*Collector, error) {
	if len(cpus) == 0 {
		return nil, fmt.Errorf("perfctr: no cpus to measure")
	}
	seen := map[int]bool{}
	for _, c := range cpus {
		if c < 0 || c >= m.OS.NumCPUs() {
			return nil, fmt.Errorf("perfctr: cpu %d does not exist (node has %d)", c, m.OS.NumCPUs())
		}
		if seen[c] {
			return nil, fmt.Errorf("perfctr: cpu %d listed twice", c)
		}
		seen[c] = true
	}
	c := &Collector{
		M:            m,
		cpus:         append([]int(nil), cpus...),
		socketLeader: map[int]int{},
		muxInterval:  opts.MuxInterval,
		acc:          map[string][]float64{},
	}
	if c.muxInterval <= 0 {
		c.muxInterval = 0.010
	}
	for _, cpu := range c.cpus {
		s := m.SocketOf(cpu)
		if cur, ok := c.socketLeader[s]; !ok || cpu < cur {
			c.socketLeader[s] = cpu
		}
	}

	arch := m.Arch

	// Mandatory events first.
	mandatory := []string{"INSTR_RETIRED_ANY", "CPU_CLK_UNHALTED_CORE"}
	for _, name := range mandatory {
		ev, err := arch.EventByName(name)
		if err != nil {
			return nil, err
		}
		if ev.Domain == hwdef.DomainFixed {
			c.fixed = append(c.fixed, entry{Name: name, Ev: ev, Slot: ev.FixedIndex})
		}
	}

	cur := eventSet{}
	flush := func() error {
		if len(cur.pmc) == 0 && len(cur.uncore) == 0 {
			return nil
		}
		c.sets = append(c.sets, cur)
		cur = eventSet{}
		return nil
	}
	addPMC := func(name string, ev hwdef.Event, slot int) error {
		if slot < 0 {
			slot = len(cur.pmc)
		}
		if slot >= arch.NumPMC || len(cur.pmc) >= arch.NumPMC {
			if !opts.Multiplex {
				return fmt.Errorf("perfctr: event %s needs counter PMC%d but %s has only %d programmable counters (use multiplexing)",
					name, slot, arch.Name, arch.NumPMC)
			}
			if err := flush(); err != nil {
				return err
			}
			slot = 0
		}
		cur.pmc = append(cur.pmc, entry{Name: name, Ev: ev, Slot: slot})
		return nil
	}
	addUncore := func(name string, ev hwdef.Event, slot int) error {
		if arch.NumUncore == 0 {
			return fmt.Errorf("perfctr: event %s is an uncore event but %s has no uncore counters", name, arch.Name)
		}
		if slot < 0 {
			slot = len(cur.uncore)
		}
		if slot >= arch.NumUncore || len(cur.uncore) >= arch.NumUncore {
			if !opts.Multiplex {
				return fmt.Errorf("perfctr: too many uncore events for %s (%d counters)", arch.Name, arch.NumUncore)
			}
			if err := flush(); err != nil {
				return err
			}
			slot = 0
		}
		cur.uncore = append(cur.uncore, entry{Name: name, Ev: ev, Slot: slot})
		return nil
	}

	// On AMD the mandatory events occupy programmable slots in every set;
	// handled by prepending them to the request list per set below.
	request := make([]EventSpec, 0, len(specs)+2)
	if !arch.HasFixedCtr {
		request = append(request,
			EventSpec{Event: "INSTR_RETIRED_ANY"},
			EventSpec{Event: "CPU_CLK_UNHALTED_CORE"})
	}
	request = append(request, specs...)

	dup := map[string]bool{}
	for _, spec := range request {
		if dup[spec.Event] {
			continue
		}
		dup[spec.Event] = true
		ev, err := arch.EventByName(spec.Event)
		if err != nil {
			return nil, err
		}
		slot, domain, err := parseCounter(spec.Counter)
		if err != nil {
			return nil, err
		}
		if spec.Counter != "" && domain != ev.Domain {
			return nil, fmt.Errorf("perfctr: event %s is a %s event, cannot go on counter %s",
				spec.Event, ev.Domain, spec.Counter)
		}
		switch ev.Domain {
		case hwdef.DomainFixed:
			// Already always counted.
		case hwdef.DomainPMC:
			if err := addPMC(spec.Event, ev, slot); err != nil {
				return nil, err
			}
		case hwdef.DomainUncore:
			if err := addUncore(spec.Event, ev, slot); err != nil {
				return nil, err
			}
		}
		c.order = append(c.order, spec.Event)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(c.sets) == 0 {
		c.sets = []eventSet{{}}
	}

	// Display order: mandatory events first, as in the paper's listing.
	front := []string{}
	for _, name := range mandatory {
		if !dup[name] {
			front = append(front, name)
		}
	}
	c.order = append(front, c.order...)
	n := len(c.cpus)
	for _, name := range c.order {
		c.acc[name] = make([]float64, n)
	}
	c.setActive = make([]float64, len(c.sets))
	return c, nil
}

// parseCounter parses "PMC2" / "FIXC0" / "UPMC3"; empty means auto.
func parseCounter(s string) (int, hwdef.CounterDomain, error) {
	if s == "" {
		return -1, hwdef.DomainPMC, nil
	}
	for prefix, dom := range map[string]hwdef.CounterDomain{
		"UPMC": hwdef.DomainUncore, "FIXC": hwdef.DomainFixed, "PMC": hwdef.DomainPMC,
	} {
		if strings.HasPrefix(s, prefix) {
			var n int
			if _, err := fmt.Sscanf(s[len(prefix):], "%d", &n); err != nil || n < 0 {
				return 0, 0, fmt.Errorf("perfctr: bad counter name %q", s)
			}
			return n, dom, nil
		}
	}
	return 0, 0, fmt.Errorf("perfctr: bad counter name %q", s)
}

// NumSets reports the number of multiplex sets (1 = no multiplexing).
func (c *Collector) NumSets() int { return len(c.sets) }

// EventNames returns the measured events in display order.
func (c *Collector) EventNames() []string { return append([]string(nil), c.order...) }

// CPUs returns the measured processors.
func (c *Collector) CPUs() []int { return append([]int(nil), c.cpus...) }

// cpuIndex maps a cpu to its column.
func (c *Collector) cpuIndex(cpu int) int {
	for i, v := range c.cpus {
		if v == cpu {
			return i
		}
	}
	return -1
}

// Start programs the first event set and begins counting.  When more than
// one set exists, a machine slice hook rotates them round-robin.
func (c *Collector) Start() error {
	if c.active {
		return fmt.Errorf("perfctr: collector already running")
	}
	c.active = true
	c.current = 0
	c.startTime = c.M.Now()
	c.lastSwitch = c.startTime
	for i := range c.setActive {
		c.setActive[i] = 0
	}
	for name := range c.acc {
		for i := range c.acc[name] {
			c.acc[name][i] = 0
		}
	}
	if err := c.program(c.sets[0]); err != nil {
		return err
	}
	if len(c.sets) > 1 {
		c.M.AddSliceHook(c.muxHook)
	}
	return nil
}

// muxHook rotates event sets on the multiplex interval.
func (c *Collector) muxHook(now float64) {
	if !c.active || len(c.sets) < 2 {
		return
	}
	if now-c.lastSwitch < c.muxInterval {
		return
	}
	c.harvest()
	c.current = (c.current + 1) % len(c.sets)
	_ = c.program(c.sets[c.current])
}

// Stop harvests the final counts and disables the counters.
func (c *Collector) Stop() error {
	if !c.active {
		return fmt.Errorf("perfctr: collector not running")
	}
	c.harvest()
	c.unprogram()
	c.active = false
	return nil
}

// harvest reads and accumulates the current set's counters, then zeroes
// them, charging the active time to the set.
func (c *Collector) harvest() {
	now := c.M.Now()
	c.setActive[c.current] += now - c.lastSwitch
	c.lastSwitch = now

	set := c.sets[c.current]
	for _, cpu := range c.cpus {
		dev, err := c.M.MSRs.Open(cpu)
		if err != nil {
			continue
		}
		idx := c.cpuIndex(cpu)
		for _, e := range c.fixed {
			v, err := dev.Read(msr.IA32FixedCtr0 + uint32(e.Slot))
			if err == nil {
				c.acc[e.Name][idx] += float64(v)
				_ = dev.Write(msr.IA32FixedCtr0+uint32(e.Slot), 0)
			}
		}
		for _, e := range set.pmc {
			reg := c.pmcReg(e.Slot)
			v, err := dev.Read(reg)
			if err == nil {
				c.acc[e.Name][idx] += float64(v)
				_ = dev.Write(reg, 0)
			}
		}
	}
	// Uncore: socket leaders only (socket lock).
	for _, leader := range c.socketLeaders() {
		dev, err := c.M.MSRs.Open(leader)
		if err != nil {
			continue
		}
		idx := c.cpuIndex(leader)
		for _, e := range set.uncore {
			v, err := dev.Read(msr.UncPMC + uint32(e.Slot))
			if err == nil {
				c.acc[e.Name][idx] += float64(v)
				_ = dev.Write(msr.UncPMC+uint32(e.Slot), 0)
			}
		}
	}
}

func (c *Collector) socketLeaders() []int {
	out := make([]int, 0, len(c.socketLeader))
	for _, cpu := range c.socketLeader {
		out = append(out, cpu)
	}
	sort.Ints(out)
	return out
}

func (c *Collector) pmcReg(slot int) uint32 {
	if c.M.Arch.Vendor == hwdef.AMD {
		return msr.AMDPMC0 + uint32(slot)
	}
	return msr.IA32PMC0 + uint32(slot)
}

func (c *Collector) evtselReg(slot int) uint32 {
	if c.M.Arch.Vendor == hwdef.AMD {
		return msr.AMDPerfEvtSel0 + uint32(slot)
	}
	return msr.IA32PerfEvtSel0 + uint32(slot)
}

// program writes the event selections of one set and enables counting.
func (c *Collector) program(set eventSet) error {
	arch := c.M.Arch
	for _, cpu := range c.cpus {
		dev, err := c.M.MSRs.Open(cpu)
		if err != nil {
			return err
		}
		// Clear previous PMC programming.
		for slot := 0; slot < arch.NumPMC; slot++ {
			if err := dev.Write(c.evtselReg(slot), 0); err != nil {
				return err
			}
			if err := dev.Write(c.pmcReg(slot), 0); err != nil {
				return err
			}
		}
		var globalMask uint64
		for _, e := range set.pmc {
			if err := dev.Write(c.evtselReg(e.Slot), msr.EvtselEncode(e.Ev.Code, e.Ev.Umask)); err != nil {
				return err
			}
			globalMask |= 1 << uint(e.Slot)
		}
		if arch.Vendor == hwdef.Intel {
			if arch.HasFixedCtr {
				var ctrl uint64
				for _, e := range c.fixed {
					ctrl |= 0x3 << (4 * uint(e.Slot))
					if err := dev.Write(msr.IA32FixedCtr0+uint32(e.Slot), 0); err != nil {
						return err
					}
					globalMask |= 1 << (32 + uint(e.Slot))
				}
				if err := dev.Write(msr.IA32FixedCtrCtrl, ctrl); err != nil {
					return err
				}
			}
			if err := dev.Write(msr.IA32PerfGlobalCtl, globalMask); err != nil {
				return err
			}
		}
	}
	// Uncore programming through the socket leaders.
	if len(set.uncore) > 0 {
		for _, leader := range c.socketLeaders() {
			dev, err := c.M.MSRs.Open(leader)
			if err != nil {
				return err
			}
			var mask uint64
			for _, e := range set.uncore {
				if err := dev.Write(msr.UncPerfEvtSel+uint32(e.Slot), msr.EvtselEncode(e.Ev.Code, e.Ev.Umask)); err != nil {
					return err
				}
				if err := dev.Write(msr.UncPMC+uint32(e.Slot), 0); err != nil {
					return err
				}
				mask |= 1 << uint(e.Slot)
			}
			if err := dev.Write(msr.UncGlobalCtl, mask); err != nil {
				return err
			}
		}
	} else if arch.NumUncore > 0 {
		for _, leader := range c.socketLeaders() {
			dev, err := c.M.MSRs.Open(leader)
			if err != nil {
				return err
			}
			if err := dev.Write(msr.UncGlobalCtl, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// unprogram disables all counting.
func (c *Collector) unprogram() {
	arch := c.M.Arch
	for _, cpu := range c.cpus {
		dev, err := c.M.MSRs.Open(cpu)
		if err != nil {
			continue
		}
		for slot := 0; slot < arch.NumPMC; slot++ {
			_ = dev.Write(c.evtselReg(slot), 0)
		}
		if arch.Vendor == hwdef.Intel {
			_ = dev.Write(msr.IA32PerfGlobalCtl, 0)
			if arch.HasFixedCtr {
				_ = dev.Write(msr.IA32FixedCtrCtrl, 0)
			}
		}
	}
	if arch.NumUncore > 0 {
		for _, leader := range c.socketLeaders() {
			if dev, err := c.M.MSRs.Open(leader); err == nil {
				_ = dev.Write(msr.UncGlobalCtl, 0)
			}
		}
	}
}

// Results holds the measured counts.
type Results struct {
	CPUs     []int
	Events   []string
	Counts   map[string][]float64 // event -> value per cpu column
	WallTime float64              // measured interval in simulated seconds
	Scaled   bool                 // true when multiplex extrapolation applied
}

// Read returns the accumulated counts.  With multiplexing, counts of
// rotated sets are linearly extrapolated from their active time share —
// which is where the paper's warning about short measurements carrying
// large statistical errors comes from.
func (c *Collector) Read() Results {
	wall := c.M.Now() - c.startTime
	r := Results{
		CPUs:     c.CPUs(),
		Events:   c.EventNames(),
		Counts:   map[string][]float64{},
		WallTime: wall,
		Scaled:   len(c.sets) > 1,
	}
	// Which set measured which event?
	setOf := map[string]int{}
	for i, set := range c.sets {
		for _, e := range set.pmc {
			setOf[e.Name] = i
		}
		for _, e := range set.uncore {
			setOf[e.Name] = i
		}
	}
	for name, vals := range c.acc {
		scaled := make([]float64, len(vals))
		scale := 1.0
		if si, ok := setOf[name]; ok && len(c.sets) > 1 {
			if c.setActive[si] > 0 && wall > 0 {
				scale = wall / c.setActive[si]
			}
		}
		for i, v := range vals {
			scaled[i] = v * scale
		}
		r.Counts[name] = scaled
	}
	return r
}

// Env builds the formula environment for one cpu column: all event counts
// plus "time" (seconds, from the cycle counter) and "clock" (Hz).
func (r Results) Env(col int, clockHz float64) map[string]float64 {
	env := map[string]float64{"clock": clockHz}
	for name, vals := range r.Counts {
		env[name] = vals[col]
	}
	if cycles, ok := r.Counts["CPU_CLK_UNHALTED_CORE"]; ok && clockHz > 0 {
		env["time"] = cycles[col] / clockHz
	} else {
		env["time"] = r.WallTime
	}
	return env
}
