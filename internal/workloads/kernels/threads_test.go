package kernels

import (
	"testing"

	"likwid/internal/hwdef"
)

func TestSharedHierarchyLayout(t *testing.T) {
	sh, err := NewSharedHierarchy(hwdef.WestmereEP, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Threads) != 4 || len(sh.Shared) != 2 {
		t.Fatalf("threads=%d shared=%d, want 4/2", len(sh.Threads), len(sh.Shared))
	}
	for _, chain := range sh.Chains {
		if len(chain) != 2 { // private L1 + L2 above the shared L3
			t.Fatalf("chain length = %d, want 2", len(chain))
		}
	}
	// Core 2: the L2 is the LLC shared per die pair -> two shared
	// instances for four threads, no private L2.
	c2, err := NewSharedHierarchy(hwdef.Core2Quad, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Shared) != 2 {
		t.Fatalf("core2 shared LLCs = %d, want 2 (per die pair)", len(c2.Shared))
	}
	if len(c2.Chains[0]) != 1 {
		t.Fatalf("core2 private chain = %d levels, want 1 (L1 only)", len(c2.Chains[0]))
	}
}

func TestSharedHierarchyValidation(t *testing.T) {
	if _, err := NewSharedHierarchy(hwdef.WestmereEP, 0, nil); err == nil {
		t.Error("zero threads must fail")
	}
	if _, err := NewSharedHierarchy(hwdef.WestmereEP, 13, nil); err == nil {
		t.Error("more threads than cores must fail")
	}
}

// TestSharedLLCContention: two threads whose combined working set fits the
// shared L3 run fast; four threads with the same per-thread footprint spill
// it and slow down per-byte.
func TestSharedLLCContention(t *testing.T) {
	a := hwdef.NehalemEP // 8 MB shared L3
	k, _ := ByName("load")
	// 3 MB per thread: 2 threads (one per socket) -> 3 MB per L3: fits.
	// 4 threads (two per socket) -> 6 MB per L3 with two streams: still
	// fits; 8 threads is disallowed (> cores)... use per-thread 5 MB:
	// 2 threads -> 5 MB per socket L3 (fits), 4 threads -> 10 MB (spills).
	perThread := 5 << 20
	two, err := RunThreads(a, k, perThread*2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunThreads(a, k, perThread*4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The 2-thread case reruns from L3 (few memory lines); the 4-thread
	// case spills per-socket and must touch memory heavily.
	if two.MemLines*4 > four.MemLines {
		t.Errorf("LLC contention invisible: 2 threads %d mem lines, 4 threads %d",
			two.MemLines, four.MemLines)
	}
	perByteTwo := two.CyclesPerElem
	perByteFour := four.CyclesPerElem
	if perByteFour <= perByteTwo {
		t.Errorf("spilling the shared LLC must cost cycles/elem: %v -> %v",
			perByteTwo, perByteFour)
	}
}

// TestThreadsScaleInCacheBandwidth: aggregate in-cache bandwidth grows with
// threads (private L1s are independent).
func TestThreadsScaleInCacheBandwidth(t *testing.T) {
	a := hwdef.WestmereEP
	k, _ := ByName("load")
	one, err := RunThreads(a, k, 16<<10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunThreads(a, k, 4*16<<10, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if four.BandwidthMBs < one.BandwidthMBs*3 {
		t.Errorf("4-thread L1 bandwidth %v not ≈ 4x of %v", four.BandwidthMBs, one.BandwidthMBs)
	}
}
