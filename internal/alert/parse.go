package alert

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"likwid/internal/monitor"
)

// The rule spec language, one rule per line:
//
//	name: FN([SOURCE/]METRIC[{LABEL="VALUE",...}], SCOPE[, ID], LOOKBACK) CMP THRESHOLD for DURATION [every DURATION]
//
//	mem_bw_low: avg(memory_bandwidth_mbytes_s, socket, 30s) < 2000 for 60s
//	flops_flat: rate("DP MFlops/s", node, 10s) <= 0 for 30s every 5s
//	bw_skew:    imbalance(memory_bandwidth_mbytes_s, socket, 30s) > 0.5 for 1m
//	fleet_bw:   avg(*/dp_mflops_s, node, 30s) < 1 for 60s
//	job_bw:     avg(*/dp_mflops_s{job="lbm"}, node, 30s) < 1 for 60s
//
// FN is avg | min | max | rate | imbalance; SCOPE is thread | core |
// socket | node; METRIC may be quoted (names with spaces) and may use
// '*' wildcards; ID is optional (default: every matching id, one alert
// instance per series).  SOURCE is an optional agent selector matched
// against Key.Source as its own dimension ('*' wildcards allowed;
// omitted = local series only); the suite's slash-namespaced metric
// families (event/, topo/, feature/, membw/, alert/) are recognized and
// never read as a source.  The optional {LABEL="VALUE",...} matcher
// block restricts the selector to series whose label set carries every
// named label with a matching value ('*' wildcards allowed in values).
// Blank lines and '#' comments are ignored.  Errors carry line:column
// positions so a typo in a 50-rule file is findable.

// scanner is the hand-rolled single-line tokenizer; errors report
// 1-based line:column positions.
type scanner struct {
	src  string
	pos  int
	line int
}

func (s *scanner) errf(col int, format string, args ...any) error {
	return fmt.Errorf("alert: line %d:%d: %s", s.line, col, fmt.Sprintf(format, args...))
}

func (s *scanner) skipSpace() {
	for s.pos < len(s.src) && (s.src[s.pos] == ' ' || s.src[s.pos] == '\t') {
		s.pos++
	}
}

// col is the 1-based column of the current position.
func (s *scanner) col() int { return s.pos + 1 }

func (s *scanner) eof() bool {
	s.skipSpace()
	return s.pos >= len(s.src)
}

// wordBreak are the delimiter characters that terminate a bare word.
// '{' and '}' delimit the label matcher block of a selector, so a bare
// metric stops at the block (quote a metric that really contains them).
const wordBreak = " \t:,()<>=\"{}"

// word reads a maximal run of non-delimiter characters.
func (s *scanner) word() (string, int) {
	s.skipSpace()
	start := s.pos
	for s.pos < len(s.src) && !strings.ContainsRune(wordBreak, rune(s.src[s.pos])) {
		s.pos++
	}
	return s.src[start:s.pos], start + 1
}

// selectorWord reads a maximal run of non-delimiter characters, also
// stopping at '/' — the source/metric separator of a selector.
func (s *scanner) selectorWord() (string, int) {
	s.skipSpace()
	start := s.pos
	for s.pos < len(s.src) && s.src[s.pos] != '/' &&
		!strings.ContainsRune(wordBreak, rune(s.src[s.pos])) {
		s.pos++
	}
	return s.src[start:s.pos], start + 1
}

// selector reads the [SOURCE/]METRIC selector of a rule expression into
// its two dimensions.  Either part may be quoted; an unquoted leading
// segment that is one of the suite's reserved metric namespaces
// (event/, topo/, feature/, membw/, alert/) belongs to the metric, not
// a source — quoting the segment ("event"/x) forces the source reading.
func (s *scanner) selector() (source, metric string, col int, err error) {
	s.skipSpace()
	quoted := false
	var part string
	if s.pos < len(s.src) && s.src[s.pos] == '"' {
		if part, col, err = s.quoted(); err != nil {
			return "", "", col, err
		}
		quoted = true
	} else {
		part, col = s.selectorWord()
	}
	if s.pos < len(s.src) && s.src[s.pos] == '/' {
		if quoted || !monitor.ReservedNamespace(part) {
			s.pos++ // consume the separator
			if s.pos < len(s.src) && s.src[s.pos] == '"' {
				if metric, _, err = s.quoted(); err != nil {
					return "", "", col, err
				}
			} else {
				metric, _ = s.word() // '/' inside the metric tail stays
			}
			return part, metric, col, nil
		}
		// Reserved namespace: the '/' is part of the metric name.
		rest, _ := s.word()
		part += rest
	}
	return "", part, col, nil
}

// matchers reads the optional {name="value",...} label matcher block
// that may suffix a selector's metric.  Names are bare label names,
// values are quoted and may use '*' wildcards; duplicate names and an
// empty block are errors.  Matchers are returned sorted by name, so a
// rendered rule is canonical.
func (s *scanner) matchers() ([]LabelMatcher, error) {
	s.skipSpace()
	if s.pos >= len(s.src) || s.src[s.pos] != '{' {
		return nil, nil
	}
	s.pos++
	var out []LabelMatcher
	seen := map[string]bool{}
	for {
		name, col := s.word()
		if name == "" {
			return nil, s.errf(col, "expected a label name in the matcher block")
		}
		if !monitor.ValidLabelName(name) {
			return nil, s.errf(col, "bad matcher label name %q (letters, digits, '_'; not starting with a digit)", name)
		}
		if monitor.ReservedLabelName(name) {
			return nil, s.errf(col, "label name %q is reserved; match it with the selector's own dimensions instead", name)
		}
		if seen[name] {
			return nil, s.errf(col, "duplicate matcher label %q", name)
		}
		seen[name] = true
		if err := s.expect('=', "after the matcher label name"); err != nil {
			return nil, err
		}
		value, vcol, err := s.quoted()
		if err != nil {
			return nil, err
		}
		if value == "" {
			return nil, s.errf(vcol, "empty matcher value for label %q", name)
		}
		out = append(out, LabelMatcher{Name: name, Value: value})
		s.skipSpace()
		if s.pos < len(s.src) && s.src[s.pos] == ',' {
			s.pos++
			continue
		}
		break
	}
	if err := s.expect('}', "after the label matchers"); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// quoted reads a double-quoted string (no escapes: metric names contain
// no quotes).
func (s *scanner) quoted() (string, int, error) {
	s.skipSpace()
	start := s.pos
	if s.pos >= len(s.src) || s.src[s.pos] != '"' {
		return "", start + 1, s.errf(start+1, "expected quoted string")
	}
	s.pos++
	end := strings.IndexByte(s.src[s.pos:], '"')
	if end < 0 {
		return "", start + 1, s.errf(start+1, "unterminated quoted metric")
	}
	out := s.src[s.pos : s.pos+end]
	s.pos += end + 1
	return out, start + 1, nil
}

func (s *scanner) expect(ch byte, what string) error {
	s.skipSpace()
	if s.pos >= len(s.src) || s.src[s.pos] != ch {
		return s.errf(s.col(), "expected %q %s", string(ch), what)
	}
	s.pos++
	return nil
}

// duration parses a positive Go duration word ("30s", "1m30s").
func (s *scanner) duration(what string, allowZero bool) (time.Duration, error) {
	w, col := s.word()
	if w == "" {
		return 0, s.errf(col, "expected %s duration (like 30s)", what)
	}
	d, err := time.ParseDuration(w)
	if err != nil {
		return 0, s.errf(col, "bad %s duration %q (want a Go duration like 30s or 1m)", what, w)
	}
	if d < 0 || (!allowZero && d == 0) {
		return 0, s.errf(col, "%s duration must be positive, got %q", what, w)
	}
	return d, nil
}

// validName reports whether a rule name is usable as an "alert/<name>"
// series component.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// ParseRule parses one rule line; lineNo is the 1-based line for error
// positions.
func ParseRule(line string, lineNo int) (*Rule, error) {
	s := &scanner{src: line, line: lineNo}

	name, col := s.word()
	if name == "" {
		return nil, s.errf(col, "expected rule name")
	}
	if !validName(name) {
		return nil, s.errf(col, "bad rule name %q (letters, digits, '_', '-', '.')", name)
	}
	if err := s.expect(':', "after the rule name"); err != nil {
		return nil, err
	}

	fnWord, col := s.word()
	fn, ok := parseFn(fnWord)
	if !ok {
		return nil, s.errf(col, "unknown function %q (avg, min, max, rate, imbalance)", fnWord)
	}
	if err := s.expect('(', "after the function"); err != nil {
		return nil, err
	}

	source, metric, col, err := s.selector()
	if err != nil {
		return nil, err
	}
	if metric == "" {
		return nil, s.errf(col, "expected a metric selector")
	}
	matchers, err := s.matchers()
	if err != nil {
		return nil, err
	}
	if err := s.expect(',', "after the metric"); err != nil {
		return nil, err
	}

	scopeWord, col := s.word()
	scope, err := monitor.ParseScope(scopeWord)
	if err != nil {
		return nil, s.errf(col, "bad scope %q (thread, core, socket, node)", scopeWord)
	}
	if err := s.expect(',', "after the scope"); err != nil {
		return nil, err
	}

	// The next argument is an optional integer id; a bare integer cannot
	// be a duration (those need a unit), so the forms stay unambiguous.
	id := AllIDs
	w, col := s.word()
	if n, aerr := strconv.Atoi(w); aerr == nil {
		if n < 0 {
			return nil, s.errf(col, "id must not be negative, got %d", n)
		}
		if fn == FnImbalance {
			return nil, s.errf(col, "imbalance aggregates across ids; drop the id argument")
		}
		id = n
		if err := s.expect(',', "after the id"); err != nil {
			return nil, err
		}
		w, col = s.word()
	}
	if w == "" {
		return nil, s.errf(col, "expected lookback duration (like 30s)")
	}
	lookback, derr := time.ParseDuration(w)
	if derr != nil || lookback <= 0 {
		return nil, s.errf(col, "bad lookback %q (want a positive duration like 30s)", w)
	}
	if err := s.expect(')', "after the lookback"); err != nil {
		return nil, err
	}

	cmp, err := parseCmp(s)
	if err != nil {
		return nil, err
	}

	threshWord, col := s.word()
	if threshWord == "" {
		return nil, s.errf(col, "expected threshold number")
	}
	threshold, perr := strconv.ParseFloat(threshWord, 64)
	if perr != nil || math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		return nil, s.errf(col, "bad threshold %q (want a finite number like 2.0e9)", threshWord)
	}

	kw, col := s.word()
	if kw != "for" {
		return nil, s.errf(col, "expected \"for DURATION\", got %q", kw)
	}
	hold, err := s.duration("hold (\"for\")", true)
	if err != nil {
		return nil, err
	}

	every := time.Duration(0)
	if !s.eof() {
		kw, col := s.word()
		if kw != "every" {
			return nil, s.errf(col, "unexpected %q (only \"every DURATION\" may follow)", kw)
		}
		if every, err = s.duration("evaluation (\"every\")", false); err != nil {
			return nil, err
		}
	}
	if !s.eof() {
		w, col := s.word()
		if w == "" {
			col = s.col()
			w = string(s.src[s.pos])
		}
		return nil, s.errf(col, "unexpected trailing %q", w)
	}

	return &Rule{
		Name:      name,
		Fn:        fn,
		Source:    source,
		Metric:    metric,
		Matchers:  matchers,
		Scope:     scope,
		ID:        id,
		Lookback:  lookback.Seconds(),
		Cmp:       cmp,
		Threshold: threshold,
		For:       hold.Seconds(),
		Every:     every,
		Line:      lineNo,
	}, nil
}

func parseCmp(s *scanner) (Cmp, error) {
	s.skipSpace()
	col := s.col()
	if s.pos >= len(s.src) {
		return 0, s.errf(col, "expected comparison (<, <=, >, >=)")
	}
	var cmp Cmp
	switch s.src[s.pos] {
	case '<':
		cmp = CmpLT
	case '>':
		cmp = CmpGT
	default:
		return 0, s.errf(col, "expected comparison (<, <=, >, >=), got %q", string(s.src[s.pos]))
	}
	s.pos++
	if s.pos < len(s.src) && s.src[s.pos] == '=' {
		cmp++ // LT→LE, GT→GE
		s.pos++
	}
	return cmp, nil
}

// ParseRules parses a whole rule file: one rule per line, blank lines
// and '#' comments ignored, duplicate names rejected (they would share
// one "alert/<name>" history series and dedup key).
func ParseRules(src string) ([]*Rule, error) {
	var rules []*Rule
	byName := map[string]int{}
	for i, line := range strings.Split(src, "\n") {
		line = stripComment(line)
		if strings.TrimSpace(line) == "" {
			continue
		}
		r, err := ParseRule(line, i+1)
		if err != nil {
			return nil, err
		}
		if prev, dup := byName[r.Name]; dup {
			return nil, fmt.Errorf("alert: line %d: rule %q already defined on line %d", i+1, r.Name, prev)
		}
		byName[r.Name] = i + 1
		rules = append(rules, r)
	}
	return rules, nil
}

// stripComment removes a '#' comment, respecting quoted metrics.
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}
