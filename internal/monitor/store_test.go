package monitor

import (
	"sync"
	"testing"
)

func key(metric string) Key { return Key{Metric: metric, Scope: ScopeThread, ID: 0} }

func TestRingBufferWraparound(t *testing.T) {
	st := NewStore(4)
	k := key("bw")
	for i := 0; i < 10; i++ {
		st.Append(k, Point{Time: float64(i), Value: float64(i * 100)})
	}
	if n := st.Len(k); n != 4 {
		t.Fatalf("Len = %d, want capacity 4", n)
	}
	// Only the newest 4 points survive, oldest first.
	got := st.Window(k, 0, -1)
	if len(got) != 4 {
		t.Fatalf("window returned %d points, want 4", len(got))
	}
	for i, p := range got {
		wantT := float64(6 + i)
		if p.Time != wantT || p.Value != wantT*100 {
			t.Errorf("point %d = %+v, want t=%v v=%v", i, p, wantT, wantT*100)
		}
	}
	latest, ok := st.Latest(k)
	if !ok || latest.Time != 9 {
		t.Errorf("Latest = %+v ok=%v, want t=9", latest, ok)
	}
}

func TestWindowQuerySemantics(t *testing.T) {
	st := NewStore(16)
	k := key("bw")
	for i := 0; i < 8; i++ {
		st.Append(k, Point{Time: float64(i), Value: float64(i)})
	}
	// Inclusive bounds on both ends.
	got := st.Window(k, 2, 5)
	if len(got) != 4 || got[0].Time != 2 || got[3].Time != 5 {
		t.Fatalf("window [2,5] = %+v, want times 2..5", got)
	}
	// Negative "to" means until the newest point.
	if got := st.Window(k, 6, -1); len(got) != 2 {
		t.Fatalf("window [6,∞) = %+v, want 2 points", got)
	}
	// Empty window and unknown series are empty, not nil panics.
	if got := st.Window(k, 100, 200); len(got) != 0 {
		t.Fatalf("out-of-range window = %+v, want empty", got)
	}
	if got := st.Window(key("nope"), 0, -1); got != nil {
		t.Fatalf("unknown series window = %+v, want nil", got)
	}
}

func TestStorePartiallyFilledRing(t *testing.T) {
	st := NewStore(8)
	k := key("x")
	st.Append(k, Point{Time: 1, Value: 10})
	st.Append(k, Point{Time: 2, Value: 20})
	got := st.Window(k, 0, -1)
	if len(got) != 2 || got[0].Time != 1 || got[1].Time != 2 {
		t.Fatalf("window = %+v, want the 2 appended points in order", got)
	}
	if _, ok := st.Latest(key("nope")); ok {
		t.Error("Latest on unknown series must report !ok")
	}
}

func TestStoreKeysSortedAndBatch(t *testing.T) {
	st := NewStore(4)
	st.AppendBatch(Batch{Time: 1, Samples: []Sample{
		{Metric: "b", Scope: ScopeNode, ID: 0, Time: 1, Value: 1},
		{Metric: "a", Scope: ScopeSocket, ID: 1, Time: 1, Value: 2},
		{Metric: "a", Scope: ScopeSocket, ID: 0, Time: 1, Value: 3},
		{Metric: "a", Scope: ScopeThread, ID: 0, Time: 1, Value: 4},
	}})
	keys := st.Keys()
	want := []Key{
		{Metric: "a", Scope: ScopeThread, ID: 0},
		{Metric: "a", Scope: ScopeSocket, ID: 0},
		{Metric: "a", Scope: ScopeSocket, ID: 1},
		{Metric: "b", Scope: ScopeNode, ID: 0},
	}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %+v, want %+v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("key %d = %+v, want %+v", i, keys[i], want[i])
		}
	}
}

func TestStoreConcurrentAppends(t *testing.T) {
	st := NewStore(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := Key{Metric: "m", Scope: ScopeThread, ID: g}
			for i := 0; i < 200; i++ {
				st.Append(k, Point{Time: float64(i), Value: float64(i)})
				st.Window(k, 0, -1)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		k := Key{Metric: "m", Scope: ScopeThread, ID: g}
		if n := st.Len(k); n != 128 {
			t.Errorf("series %d Len = %d, want 128", g, n)
		}
	}
}

// TestStoreSourceIsAKeyDimension pins the identity refactor: the same
// metric under different sources is different series, distinct from a
// metric that happens to contain a slash.
func TestStoreSourceIsAKeyDimension(t *testing.T) {
	st := NewStore(8)
	local := Key{Metric: "bw", Scope: ScopeNode, ID: 0}
	fleetA := Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, ID: 0}
	slashy := Key{Metric: "nodeA/bw", Scope: ScopeNode, ID: 0}
	st.Append(local, Point{Time: 1, Value: 1})
	st.Append(fleetA, Point{Time: 1, Value: 2})
	st.Append(slashy, Point{Time: 1, Value: 3})
	if n := len(st.Keys()); n != 3 {
		t.Fatalf("store has %d series, want 3 distinct identities", n)
	}
	for k, want := range map[Key]float64{local: 1, fleetA: 2, slashy: 3} {
		if p, ok := st.Latest(k); !ok || p.Value != want {
			t.Errorf("Latest(%+v) = %+v ok=%v, want value %v", k, p, ok, want)
		}
	}
	// Keys sorts local series first, then per-source blocks.
	keys := st.Keys()
	if keys[0].Source != "" || keys[1].Source != "" || keys[2].Source != "nodeA" {
		t.Errorf("Keys order = %+v, want sourceless first", keys)
	}
}

// TestStoreInternHandle covers the pinned-series fast path used by the
// ingest fan-in: a handle appends into the same ring the keyed API
// reads.
func TestStoreInternHandle(t *testing.T) {
	st := NewStore(8)
	k := Key{Source: "nodeA", Metric: "bw", Scope: ScopeNode, ID: 0}
	h := st.Intern(k)
	for i := 0; i < 3; i++ {
		h.Append(Point{Time: float64(i), Value: float64(i * 10)})
	}
	if pts := st.Window(k, 0, -1); len(pts) != 3 || pts[2].Value != 20 {
		t.Fatalf("window through keyed API = %+v, want the 3 handle appends", pts)
	}
	if p, ok := h.Latest(); !ok || p.Value != 20 {
		t.Fatalf("handle Latest = %+v ok=%v, want value 20", p, ok)
	}
	// Interning twice resolves the same series.
	st.Intern(k).Append(Point{Time: 3, Value: 30})
	if n := st.Len(k); n != 4 {
		t.Fatalf("Len = %d after second handle append, want 4", n)
	}
}

func TestForEachKeyVisitsEverySeries(t *testing.T) {
	st := NewStore(8)
	want := map[Key]bool{}
	for i := 0; i < 20; i++ {
		k := Key{Metric: "m", Scope: ScopeThread, ID: i}
		st.Append(k, Point{Time: 1, Value: 1})
		want[k] = true
	}
	got := map[Key]bool{}
	st.ForEachKey(func(k Key) { got[k] = true })
	if len(got) != len(want) {
		t.Fatalf("visited %d keys, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("key %+v not visited", k)
		}
	}
}
