// likwid-repro regenerates every table and figure of the paper's
// evaluation, printing the rows/series behind each plot plus the ablation
// studies.  This is the one-shot reproduction driver; see EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	likwid-repro [-only ID] [-samples N] [-iters N]
//
//	-only ID     run a single experiment: fig1 fig2 fig3 fig4..fig11
//	             marker groups table1 table2 ablations
//	-samples N   samples per STREAM thread count (paper: 100)
//	-iters N     Jacobi sweeps per Fig. 11 point (default 20)
package main

import (
	"flag"
	"fmt"
	"os"

	"likwid/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment id")
	samples := flag.Int("samples", 100, "STREAM samples per thread count")
	iters := flag.Int("iters", 20, "Jacobi iterations per Fig. 11 point")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "likwid-repro:", err)
		os.Exit(1)
	}
	want := func(id string) bool { return *only == "" || *only == id }
	section := func(title string) {
		fmt.Printf("\n================ %s ================\n", title)
	}

	if want("fig1") {
		section("Fig. 1 / §II-B: node topology (likwid-topology)")
		for _, arch := range []string{"nehalemEP", "westmereEP"} {
			out, err := experiments.Fig1Topology(arch)
			if err != nil {
				fail(err)
			}
			fmt.Print(out)
		}
	}
	if want("fig2") {
		section("Fig. 2: event sets, events and counters")
		out, err := experiments.Fig2GroupMapping("core2", "FLOPS_DP")
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	}
	if want("fig3") {
		section("Fig. 3: likwid-pin mechanism")
		out, err := experiments.Fig3PinMechanism()
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	}
	if want("marker") {
		section("§II-A listing: marker mode FLOPS_DP on Core 2 Quad")
		out, err := experiments.MarkerListing()
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	}
	if want("groups") {
		section("§II-A table: preconfigured event sets")
		out, err := experiments.EventGroupTable("westmereEP")
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	}
	if want("features") {
		section("§II-D listing: likwid-features")
		out, err := experiments.FeaturesListing()
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
	}
	for _, spec := range experiments.StreamFigures() {
		id := fmt.Sprintf("fig%d", 3+figIndex(spec.ID))
		if !want(id) {
			continue
		}
		section(spec.ID + ": " + spec.Caption)
		s := spec
		s.Samples = *samples
		points, err := s.Run()
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render(points))
	}
	if want("fig11") {
		section("Fig. 11: Jacobi smoother vs problem size")
		points, err := experiments.Fig11(experiments.Fig11Sizes(), *iters)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.RenderFig11(points))
	}
	if want("table2") {
		section("Table II: uncore measurement of the Jacobi variants")
		rows, err := experiments.TableII()
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.RenderTableII(rows))
	}
	if want("ablations") {
		section("Ablations")
		mux, err := experiments.AblationMultiplex()
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.RenderMultiplex(mux))
		lock, err := experiments.AblationSocketLock()
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.RenderSocketLock(lock))
		pf, err := experiments.AblationPrefetchers()
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.RenderPrefetchers(pf))
		pl, err := experiments.AblationPlacement(6, *samples/2+2)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.RenderPlacement(pl, 6))
		smt, err := experiments.AblationSMTOrder()
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.RenderSMTOrder(smt))
	}
}

// figIndex recovers the figure number offset from the spec ID ("Fig. 4").
func figIndex(id string) int {
	var n int
	fmt.Sscanf(id, "Fig. %d", &n)
	return n - 3
}
