package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"likwid/internal/alert"
	"likwid/internal/derive"
	"likwid/internal/monitor"
)

// writeRules drops a rule file into a temp dir and returns its path.
func writeRules(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "alerts.rules")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseAgentFlags(t *testing.T) {
	tests := []struct {
		name    string
		args    []string
		wantErr string // substring of the expected error; "" = success
		check   func(t *testing.T, cfg *agentConfig)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, cfg *agentConfig) {
				if cfg.arch != "westmereEP" || cfg.group != "MEM_DP" {
					t.Errorf("defaults = %s/%s, want westmereEP/MEM_DP", cfg.arch, cfg.group)
				}
				if cfg.interval != 500*time.Millisecond || cfg.retain != 1024 {
					t.Errorf("interval=%v retain=%d, want 500ms/1024", cfg.interval, cfg.retain)
				}
				if cfg.node == nil {
					t.Error("validation must open the node for reuse")
				}
				if len(cfg.tiers) != 0 {
					t.Errorf("tiers = %v, want none by default", cfg.tiers)
				}
			},
		},
		{
			name: "full agent spec",
			args: []string{"-a", "istanbul", "-g", "MEM_DP", "-c", "0-3", "-i", "250ms",
				"-tiers", "10s:360,1m:720", "-sink", "csv:/tmp/x.csv", "-sink", "push:collector:8090",
				"-collectors", "perfgroup, membw", "-load", "stream:2"},
			check: func(t *testing.T, cfg *agentConfig) {
				if len(cfg.cpus) != 4 || cfg.cpus[3] != 3 {
					t.Errorf("cpus = %v, want 0..3", cfg.cpus)
				}
				if len(cfg.tiers) != 2 || cfg.tiers[0].Resolution != 10 || cfg.tiers[1].Capacity != 720 {
					t.Errorf("tiers = %+v, want 10s:360,1m:720", cfg.tiers)
				}
				if len(cfg.collectors) != 2 || cfg.collectors[1] != "membw" {
					t.Errorf("collectors = %v, want [perfgroup membw]", cfg.collectors)
				}
				if len(cfg.sinks) != 2 {
					t.Errorf("sinks = %v, want 2 specs", cfg.sinks)
				}
			},
		},
		{
			name: "receiver mode skips machine validation",
			args: []string{"-receiver", ":8090", "-g", "NO_SUCH_GROUP", "-tiers", "10s:60"},
			check: func(t *testing.T, cfg *agentConfig) {
				if cfg.receiver != ":8090" {
					t.Errorf("receiver = %q", cfg.receiver)
				}
				if cfg.node != nil {
					t.Error("receiver mode must not open a node")
				}
			},
		},
		{name: "bad arch", args: []string{"-a", "pentium4"}, wantErr: "pentium4"},
		{name: "bad group", args: []string{"-g", "NOT_A_GROUP"}, wantErr: "NOT_A_GROUP"},
		{name: "bad cpu list", args: []string{"-c", "0-x"}, wantErr: "0-x"},
		{name: "cpu out of range", args: []string{"-c", "900"}, wantErr: "out of range"},
		{name: "bad flag", args: []string{"-bogus"}, wantErr: "bogus"},
		{name: "positional junk", args: []string{"extra"}, wantErr: "unexpected arguments"},
		{name: "zero interval", args: []string{"-i", "0s"}, wantErr: "interval"},
		{name: "negative duration", args: []string{"-duration", "-1s"}, wantErr: "duration"},
		{name: "zero buffer", args: []string{"-buffer", "0"}, wantErr: "queue depth"},
		{name: "bad sink kind", args: []string{"-sink", "kafka:topic"}, wantErr: "unknown sink kind"},
		{name: "csv sink without path", args: []string{"-sink", "csv"}, wantErr: "file path"},
		{name: "push sink without host", args: []string{"-sink", "push:"}, wantErr: "receiver URL"},
		{name: "push sink bad scheme", args: []string{"-sink", "push:ftp://h/ingest"}, wantErr: "http or https"},
		{name: "bad load kind", args: []string{"-load", "spin"}, wantErr: "unknown load spec"},
		{name: "bad load count", args: []string{"-load", "stream:zero"}, wantErr: "task count"},
		{name: "negative load count", args: []string{"-load", "stream:-2"}, wantErr: "task count"},
		{name: "idle load with argument", args: []string{"-load", "idle:3"}, wantErr: "no argument"},
		{name: "tier missing capacity", args: []string{"-tiers", "10s"}, wantErr: "RESOLUTION:CAPACITY"},
		{name: "tier bad resolution", args: []string{"-tiers", "ten:5"}, wantErr: "resolution"},
		{name: "tier zero capacity", args: []string{"-tiers", "10s:0"}, wantErr: "capacity"},
		{name: "tiers not ascending", args: []string{"-tiers", "1m:10,10s:10"}, wantErr: "ascend"},
		{name: "receiver with sink", args: []string{"-receiver", ":8090", "-sink", "stdout"}, wantErr: "-sink not allowed"},
		{
			name: "cluster sink pool",
			args: []string{"-sink", "push:shard@http://r1:8090,http://r2:8090"},
			check: func(t *testing.T, cfg *agentConfig) {
				if len(cfg.sinks) != 1 || !strings.Contains(cfg.sinks[0], "shard@") {
					t.Errorf("sinks = %v, want the cluster pool spec kept verbatim", cfg.sinks)
				}
			},
		},
		{name: "cluster sink duplicate target", args: []string{"-sink", "push:http://r1:8090/ingest,http://r1:8090"}, wantErr: "twice"},
		{name: "cluster sink bad policy", args: []string{"-sink", "push:quorum@http://r1:8090,http://r2:8090"}, wantErr: "unknown policy"},
		{
			name: "forward federation hop",
			args: []string{"-receiver", ":8090", "-forward", "pushv4:mirror@http://root-a:9000,http://root-b:9000", "-forward-downsample", "10s"},
			check: func(t *testing.T, cfg *agentConfig) {
				if cfg.forward == "" || cfg.forwardEvery != 10*time.Second {
					t.Errorf("forward = %q every = %v, want the spec and 10s", cfg.forward, cfg.forwardEvery)
				}
			},
		},
		{name: "forward without receiver", args: []string{"-forward", "push:http://root:9000"}, wantErr: "needs -receiver"},
		{name: "forward downsample without forward", args: []string{"-receiver", ":8090", "-forward-downsample", "10s"}, wantErr: "needs -forward"},
		{name: "negative forward downsample", args: []string{"-receiver", ":8090", "-forward", "push:http://root:9000", "-forward-downsample", "-1s"}, wantErr: "not be negative"},
		{name: "forward bad spec", args: []string{"-receiver", ":8090", "-forward", "push:"}, wantErr: "empty target"},
		{name: "adaptive below interval", args: []string{"-i", "500ms", "-adaptive", "100ms"}, wantErr: "below the sampling interval"},
		{name: "negative adaptive", args: []string{"-adaptive", "-1s"}, wantErr: "not be negative"},
		{name: "notify without rules", args: []string{"-notify", "stdout"}, wantErr: "needs -rules"},
		{name: "snapshot interval without wal", args: []string{"-snapshot-interval", "30s"}, wantErr: "needs -wal"},
		{name: "zero snapshot interval", args: []string{"-wal", "/tmp/x", "-snapshot-interval", "0s"}, wantErr: "snapshot interval"},
		{
			name: "wal durability",
			args: []string{"-receiver", ":8090", "-wal", "/var/lib/likwid", "-snapshot-interval", "30s"},
			check: func(t *testing.T, cfg *agentConfig) {
				if cfg.walDir != "/var/lib/likwid" || cfg.snapshotInterval != 30*time.Second {
					t.Errorf("wal = %q interval = %v, want /var/lib/likwid and 30s", cfg.walDir, cfg.snapshotInterval)
				}
			},
		},
		{
			name: "wal defaults to one-minute snapshots",
			args: []string{"-receiver", ":8090", "-wal", "/var/lib/likwid"},
			check: func(t *testing.T, cfg *agentConfig) {
				if cfg.snapshotInterval != time.Minute {
					t.Errorf("snapshot interval = %v, want 1m default", cfg.snapshotInterval)
				}
			},
		},
		{name: "bad notifier kind", args: []string{"-rules", "x", "-notify", "pagerduty:key"}, wantErr: "rules file"},
		{name: "missing rules file", args: []string{"-rules", "/no/such/file.rules"}, wantErr: "rules file"},
		{
			name: "labels stamp",
			args: []string{"-labels", "job=lbm,cluster=emmy"},
			check: func(t *testing.T, cfg *agentConfig) {
				if got := cfg.labels.String(); got != "cluster=emmy,job=lbm" {
					t.Errorf("labels = %q, want the canonical cluster=emmy,job=lbm", got)
				}
			},
		},
		{
			name: "receiver labels as ingest defaults",
			args: []string{"-receiver", ":8090", "-labels", "cluster=emmy"},
			check: func(t *testing.T, cfg *agentConfig) {
				if v, ok := cfg.labels.Get("cluster"); !ok || v != "emmy" {
					t.Errorf("receiver labels = %q, want cluster=emmy", cfg.labels)
				}
			},
		},
		{name: "labels missing value", args: []string{"-labels", "job"}, wantErr: "name=value"},
		{name: "labels bad name", args: []string{"-labels", "1job=x"}, wantErr: "bad label name"},
		{name: "labels duplicate", args: []string{"-labels", "job=a,job=b"}, wantErr: "duplicate label"},
		{
			name: "logging and pprof defaults",
			args: nil,
			check: func(t *testing.T, cfg *agentConfig) {
				if cfg.logLevel != slog.LevelInfo || cfg.logJSON || cfg.pprof {
					t.Errorf("defaults = level %v json %v pprof %v, want info/text/off",
						cfg.logLevel, cfg.logJSON, cfg.pprof)
				}
			},
		},
		{
			name: "logging flags",
			args: []string{"-log-level", "Debug", "-log-format", "json", "-pprof"},
			check: func(t *testing.T, cfg *agentConfig) {
				if cfg.logLevel != slog.LevelDebug || !cfg.logJSON || !cfg.pprof {
					t.Errorf("got level %v json %v pprof %v, want debug/json/on",
						cfg.logLevel, cfg.logJSON, cfg.pprof)
				}
			},
		},
		{
			name: "log level warning alias",
			args: []string{"-log-level", "warning"},
			check: func(t *testing.T, cfg *agentConfig) {
				if cfg.logLevel != slog.LevelWarn {
					t.Errorf("level = %v, want warn", cfg.logLevel)
				}
			},
		},
		{name: "bad log level", args: []string{"-log-level", "verbose"}, wantErr: "unknown -log-level"},
		{name: "bad log format", args: []string{"-log-format", "logfmt"}, wantErr: "unknown -log-format"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg, err := parseAgentFlags(tt.args, io.Discard)
			if tt.wantErr != "" {
				if err == nil {
					t.Fatalf("parseAgentFlags(%v) succeeded, want error containing %q", tt.args, tt.wantErr)
				}
				if !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("error = %v, want substring %q", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseAgentFlags(%v) failed: %v", tt.args, err)
			}
			if tt.check != nil {
				tt.check(t, cfg)
			}
		})
	}
}

// TestNewLogger pins the -log-format encodings and the -log-level
// filter: a warn-level JSON logger drops info records and emits one
// well-formed JSON object per line.
func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	cfg := &agentConfig{logLevel: slog.LevelWarn, logJSON: true}
	log := cfg.newLogger(&buf)
	log.Info("hidden")
	log.Warn("shown", "sink", "push")
	out := strings.TrimSpace(buf.String())
	if strings.Contains(out, "hidden") {
		t.Fatalf("info record leaked through a warn-level logger: %q", out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("-log-format json emitted non-JSON %q: %v", out, err)
	}
	if rec["msg"] != "shown" || rec["sink"] != "push" {
		t.Fatalf("record = %v, want msg=shown sink=push", rec)
	}

	buf.Reset()
	cfg = &agentConfig{logLevel: slog.LevelInfo}
	cfg.newLogger(&buf).Info("text line", "collector", "perfgroup")
	if out := buf.String(); !strings.Contains(out, "msg=\"text line\"") || !strings.Contains(out, "collector=perfgroup") {
		t.Fatalf("-log-format text emitted %q, want slog text encoding", out)
	}
}

// TestParseAgentFlagsRules covers the -rules / -notify / -adaptive
// wiring that needs real files.
func TestParseAgentFlagsRules(t *testing.T) {
	good := writeRules(t, "mem_bw_low: avg(memory_bandwidth_mbytes_s, socket, 30s) < 2000 for 60s\n")
	cfg, err := parseAgentFlags([]string{"-rules", good, "-notify", "stdout",
		"-notify", "webhook:http://ops:9093/hook", "-adaptive", "8s"}, io.Discard)
	if err != nil {
		t.Fatalf("good rules rejected: %v", err)
	}
	if len(cfg.rules) != 1 || cfg.rules[0].Name != "mem_bw_low" {
		t.Errorf("rules = %+v, want mem_bw_low", cfg.rules)
	}
	if len(cfg.notifiers) != 2 {
		t.Errorf("notifiers = %v, want 2 specs", cfg.notifiers)
	}
	if cfg.adaptive != 8*time.Second {
		t.Errorf("adaptive = %v, want 8s", cfg.adaptive)
	}

	// Receiver mode takes rules too: one receiver alerts over the fleet.
	cfg, err = parseAgentFlags([]string{"-receiver", ":0", "-rules", good}, io.Discard)
	if err != nil {
		t.Fatalf("receiver with rules rejected: %v", err)
	}
	if len(cfg.rules) != 1 {
		t.Errorf("receiver rules = %+v, want 1", cfg.rules)
	}

	// A bad rule fails fast with its file position.
	bad := writeRules(t, "ok: avg(bw, node, 1s) < 1 for 0s\nbroken: avg(bw, node) < 1 for 0s\n")
	if _, err := parseAgentFlags([]string{"-rules", bad}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "line 2:") {
		t.Errorf("bad rules error = %v, want a line 2 position", err)
	}

	// An empty rules file is a configuration error, not a silent no-op.
	empty := writeRules(t, "# nothing\n")
	if _, err := parseAgentFlags([]string{"-rules", empty}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no rules") {
		t.Errorf("empty rules error = %v, want 'no rules'", err)
	}

	// Notifier specs are validated at parse time.
	if _, err := parseAgentFlags([]string{"-rules", good, "-notify", "pagerduty:key"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "unknown notifier kind") {
		t.Errorf("bad notifier error = %v, want 'unknown notifier kind'", err)
	}
}

func TestParseLoadSpec(t *testing.T) {
	if kind, n, err := parseLoadSpec("stream"); err != nil || kind != "stream" || n != 0 {
		t.Errorf("stream = (%q, %d, %v), want (stream, 0, nil)", kind, n, err)
	}
	if kind, n, err := parseLoadSpec("stream:8"); err != nil || kind != "stream" || n != 8 {
		t.Errorf("stream:8 = (%q, %d, %v), want (stream, 8, nil)", kind, n, err)
	}
	if _, _, err := parseLoadSpec("idle"); err != nil {
		t.Errorf("idle = %v, want nil", err)
	}
}

func TestStaleHorizonClearsAdaptiveCap(t *testing.T) {
	if got := staleHorizon(0); got != 5*time.Minute {
		t.Errorf("staleHorizon(0) = %v, want 5m", got)
	}
	if got := staleHorizon(time.Minute); got != 5*time.Minute {
		t.Errorf("staleHorizon(1m) = %v, want the 5m floor", got)
	}
	// A stretch cap above the floor pushes the horizon out: a healthy
	// static series sampled every 10 m must not look stale.
	if got := staleHorizon(10 * time.Minute); got != 40*time.Minute {
		t.Errorf("staleHorizon(10m) = %v, want 40m", got)
	}
}

// TestReloadRulesAtomic pins the hot-reload contract: a good edit swaps
// the rule set, any bad edit (parse error, empty file, missing file) is
// rejected whole and the running rules stay live.
func TestReloadRulesAtomic(t *testing.T) {
	path := writeRules(t, "old: avg(bw, node, 10s) < 1 for 0s\n")
	rules, err := alert.ParseRules("old: avg(bw, node, 10s) < 1 for 0s")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := alert.NewEngine(alert.Options{Store: monitor.NewStore(8)}, rules)
	if err != nil {
		t.Fatal(err)
	}

	// Good edit: swapped.
	if err := os.WriteFile(path, []byte("new_a: avg(bw, node, 10s) < 1 for 0s\nnew_b: max(bw, node, 10s) > 9 for 0s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := reloadRules(engine, path)
	if err != nil || n != 2 {
		t.Fatalf("reloadRules = (%d, %v), want (2, nil)", n, err)
	}
	if got := engine.Rules(); len(got) != 2 || got[0].Name != "new_a" {
		t.Fatalf("rules after reload = %+v, want new_a/new_b", got)
	}

	// Bad edits: rejected atomically, the two rules stay live.
	for name, content := range map[string]string{
		"parse error": "broken: avg(bw, node) < 1 for 0s\n",
		"empty file":  "# nothing but comments\n",
	} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := reloadRules(engine, path); err == nil {
			t.Errorf("%s: reloadRules succeeded, want rejection", name)
		}
		if got := engine.Rules(); len(got) != 2 || got[0].Name != "new_a" {
			t.Errorf("%s: rules changed to %+v, want the old set kept", name, got)
		}
	}
	if _, err := reloadRules(engine, filepath.Join(t.TempDir(), "missing.rules")); err == nil {
		t.Error("missing file: reloadRules succeeded, want rejection")
	}
}

func TestParseAgentFlagsDerive(t *testing.T) {
	good := writeRules(t, "cluster_flops = sum(flops_dp) by (source) over 30s\nroute drop */noise\n")
	cfg, err := parseAgentFlags([]string{"-derive", good}, io.Discard)
	if err != nil {
		t.Fatalf("good derive file rejected: %v", err)
	}
	if len(cfg.deriveRules) != 1 || cfg.deriveRules[0].Name != "cluster_flops" {
		t.Errorf("derive rules = %+v, want cluster_flops", cfg.deriveRules)
	}
	if len(cfg.deriveRoutes) != 1 || cfg.deriveRoutes[0].Action != monitor.RouteDrop {
		t.Errorf("derive routes = %+v, want one drop", cfg.deriveRoutes)
	}

	// Receiver mode takes a derive file too (that is its main home).
	if _, err := parseAgentFlags([]string{"-receiver", ":0", "-derive", good}, io.Discard); err != nil {
		t.Fatalf("receiver with derive rejected: %v", err)
	}

	// A parse error fails fast with its file position.
	bad := writeRules(t, "ok = sum(bw) over 30s\nbroken = frob(bw) over 30s\n")
	if _, err := parseAgentFlags([]string{"-derive", bad}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "line 2:") {
		t.Errorf("bad derive error = %v, want a line 2 position", err)
	}

	// An empty derive file is a configuration error, not a silent no-op.
	empty := writeRules(t, "# nothing\n")
	if _, err := parseAgentFlags([]string{"-derive", empty}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "no rules or routes") {
		t.Errorf("empty derive error = %v, want 'no rules or routes'", err)
	}
}

func TestParseAgentFlagsGroupWait(t *testing.T) {
	rules := writeRules(t, "low: avg(bw, node, 10s) < 1 for 0s\n")
	cfg, err := parseAgentFlags([]string{"-rules", rules, "-group-wait", "30s"}, io.Discard)
	if err != nil {
		t.Fatalf("group-wait with rules rejected: %v", err)
	}
	if cfg.groupWait != 30*time.Second {
		t.Errorf("groupWait = %v, want 30s", cfg.groupWait)
	}
	// Grouping without alerting is a configuration error.
	if _, err := parseAgentFlags([]string{"-group-wait", "30s"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-group-wait needs -rules") {
		t.Errorf("group-wait without rules error = %v, want '-group-wait needs -rules'", err)
	}
	if _, err := parseAgentFlags([]string{"-rules", rules, "-group-wait", "-5s"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "not be negative") {
		t.Errorf("negative group-wait error = %v, want 'not be negative'", err)
	}
}

// TestReloadDeriveAtomic pins the derive hot-reload contract, the twin
// of TestReloadRulesAtomic: a good edit swaps rules and returns the new
// routes, any bad edit is rejected whole.
func TestReloadDeriveAtomic(t *testing.T) {
	path := writeRules(t, "old = sum(bw) over 30s\n")
	rules, routes, err := derive.ParseFile("old = sum(bw) over 30s")
	if err != nil || len(routes) != 0 {
		t.Fatal(err)
	}
	engine, err := derive.NewEngine(derive.Options{Store: monitor.NewStore(8)}, rules)
	if err != nil {
		t.Fatal(err)
	}

	// Good edit: rules swapped, routes returned.
	next := "new_a = sum(bw) over 30s\nroute rename */BW -> bw\n"
	if err := os.WriteFile(path, []byte(next), 0o644); err != nil {
		t.Fatal(err)
	}
	n, newRoutes, err := reloadDerive(engine, path)
	if err != nil || n != 1 || len(newRoutes) != 1 {
		t.Fatalf("reloadDerive = (%d, %v, %v), want (1, one route, nil)", n, newRoutes, err)
	}
	if got := engine.Rules(); len(got) != 1 || got[0].Name != "new_a" {
		t.Fatalf("rules after reload = %+v, want new_a", got)
	}

	// Bad edits: rejected atomically.
	for name, content := range map[string]string{
		"parse error": "broken = frob(bw) over 30s\n",
		"empty file":  "# nothing\n",
	} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := reloadDerive(engine, path); err == nil {
			t.Errorf("%s: reloadDerive succeeded, want rejection", name)
		}
		if got := engine.Rules(); len(got) != 1 || got[0].Name != "new_a" {
			t.Errorf("%s: rules changed to %+v, want the old set kept", name, got)
		}
	}
	if _, _, err := reloadDerive(engine, filepath.Join(t.TempDir(), "missing.rules")); err == nil {
		t.Error("missing file: reloadDerive succeeded, want rejection")
	}
}
