// Package derive is the recorded-rule engine of the monitoring
// subsystem: it computes fleet roll-ups *inside* the pipeline, the step
// the LIKWID Monitoring Stack (Röhl et al., arXiv:1708.01476) argues
// fleet-scale monitoring needs — job/cluster aggregates computed once,
// near the data, not re-derived by every reader.  User-defined rules
//
//	cluster_flops = sum(flops_dp{cluster="emmy"}) by (source) over 30s every 10s
//
// evaluate a windowed aggregation (sum, avg, min, max, count, rate)
// over every series a [SOURCE/]METRIC{label="value"} selector matches,
// grouped by the "by" dimensions, and append the result back into the
// store as a first-class series named after the rule.  A derived series
// is indistinguishable from a collected one: it downsamples through
// retention tiers, is WAL-durable, ships over the push wire, serves
// from /query and /metrics, and can be matched by an alert rule — the
// layers below need zero changes.
//
// The same rule file declares ingest routes ("route drop ...", "route
// rename ... -> NAME", "route relabel ... set k=\"v\""), the receiver's
// retag stage applied before samples are interned (monitor.Router).
//
// The spec language shares its scanner and selector machinery with the
// alert DSL through internal/spec — one parser family, two grammars.
package derive

import (
	"fmt"
	"strings"
	"time"

	"likwid/internal/monitor"
	"likwid/internal/spec"
)

// Fn is the aggregation function of a derive rule.
type Fn int

const (
	// FnSum adds the matched series' window means — the fleet roll-up:
	// each member contributes its current (noise-averaged) level once.
	FnSum Fn = iota
	// FnAvg is the mean of the matched series' window means.
	FnAvg
	// FnMin is the smallest point any matched series saw in the window.
	FnMin
	// FnMax is the largest point any matched series saw in the window.
	FnMax
	// FnCount is the number of matched series with data in the window —
	// a liveness roll-up (how many agents are reporting).
	FnCount
	// FnRate adds the matched series' per-second window slopes.
	FnRate
)

var fnNames = [...]string{"sum", "avg", "min", "max", "count", "rate"}

// String returns the spec-language name of the function.
func (f Fn) String() string {
	if f < 0 || int(f) >= len(fnNames) {
		return fmt.Sprintf("fn(%d)", int(f))
	}
	return fnNames[f]
}

// parseFn resolves a function name.
func parseFn(name string) (Fn, bool) {
	for i, n := range fnNames {
		if n == name {
			return Fn(i), true
		}
	}
	return 0, false
}

// BySource is the "by" dimension grouping output series per pushing
// agent; every other dimension is a label name.
const BySource = "source"

// Rule is one parsed recorded rule.
//
// Over is simulated seconds — the store's time axis — so a rule's
// window lines up with the data regardless of how fast wall time runs.
// Every is wall time: the evaluation cadence of the engine, not a
// property of the data.
type Rule struct {
	// Name identifies the rule and becomes the metric name of its
	// output series.
	Name string
	// Fn is the aggregation applied across the matched series.
	Fn Fn
	// Source selects input series by measuring agent ('*' wildcards).
	// Empty matches EVERY source: a recorded rule is a fleet roll-up,
	// so unlike an alert selector it has no "local only" reading — on
	// an agent all series are local anyway, and on a receiver a rule
	// without a source selector sweeps the whole fleet.
	Source string
	// Metric selects input series by name: exact, '*' wildcards, or
	// sanitized-form equality.  Wildcard selectors never match alert
	// histories or other rules' outputs (an explicit name does, so
	// rules can chain).
	Metric string
	// Matchers restrict the selector to series whose label set carries
	// every named label with a matching value ('*' wildcards).
	Matchers []monitor.Label
	// Scope restricts the inputs to one topology domain (default node),
	// so a rule never double-counts a metric reported at several
	// scopes.
	Scope monitor.Scope
	// By are the grouping dimensions: BySource and/or label names.  One
	// output series is emitted per distinct combination, carrying the
	// group's source and labels; empty By collapses everything into one
	// sourceless, unlabelled output.
	By []string
	// Over is the aggregation window in simulated seconds.
	Over float64
	// Every overrides the engine's evaluation cadence for this rule
	// (wall time); 0 uses the engine default.
	Every time.Duration
	// Line is the 1-based line of the rule in its spec file.
	Line int
}

// String renders the rule back in spec syntax (canonical: parsing the
// rendering yields an identical rendering).
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s = %s(%s", r.Name, r.Fn, spec.RenderSelector(r.Source, r.Metric, r.Matchers))
	if r.Scope != monitor.ScopeNode {
		fmt.Fprintf(&b, ", %s", r.Scope)
	}
	b.WriteString(")")
	if len(r.By) > 0 {
		fmt.Fprintf(&b, " by (%s)", strings.Join(r.By, ", "))
	}
	fmt.Fprintf(&b, " over %s", spec.FormatSeconds(r.Over))
	if r.Every > 0 {
		fmt.Fprintf(&b, " every %s", r.Every)
	}
	return b.String()
}

// Matches reports whether the rule's selector picks a stored series as
// an input.  derived is the name set of every loaded rule's output:
// wildcard selectors skip those series (and alert histories), so a
// sweep cannot feed on roll-ups — but an explicit metric name matches,
// letting rules chain on purpose.  A rule never matches its own output
// regardless.
func (r *Rule) Matches(k monitor.Key, derived map[string]bool) bool {
	if k.Metric == r.Name {
		return false
	}
	if k.Scope != r.Scope {
		return false
	}
	if strings.Contains(r.Metric, "*") &&
		(strings.HasPrefix(k.Metric, "alert/") || derived[k.Metric]) {
		return false
	}
	if r.Source != "" && !monitor.MatchSource(r.Source, k.Source) {
		return false
	}
	if !monitor.MatchLabels(r.Matchers, k.Labels) {
		return false
	}
	return monitor.MatchMetric(r.Metric, k.Metric)
}
