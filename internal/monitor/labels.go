package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value pair of a series label set.
type Label struct {
	Name  string
	Value string
}

// labelSet is the interned backing of a Labels handle: the pairs sorted
// by name plus their canonical "name=value,name=value" encoding, which
// doubles as the intern identity.
type labelSet struct {
	pairs []Label
	canon string
}

// Labels is a small, canonically ordered, interned label set — the
// structured tail of a series identity (job=lbm, cluster=emmy) beyond
// the single Source dimension.  The zero value is the empty set, so
// unlabelled keys are unchanged by the labels dimension.
//
// Labels is a handle: equal sets always intern to the same pointer, so
// Labels (and therefore Key) compares with == and hashes as one word —
// the hot append path stays one atomic load plus one map access with no
// per-point string building.
type Labels struct {
	set *labelSet
}

// labelIntern is the process-wide intern table.  Label sets are tiny and
// stable (a node's job/cluster identity, a receiver's fleet), so the
// mutex is only ever touched when a new combination first appears.
var labelIntern = struct {
	sync.Mutex
	m map[string]*labelSet
}{m: map[string]*labelSet{}}

// InternedLabelSets reports the size of the process-wide intern table —
// the store's "how much identity state am I holding" self-metric.  It
// only ever grows, so a runaway remote labelling scheme shows up as a
// climbing gauge long before memory does.
func InternedLabelSets() int {
	labelIntern.Lock()
	defer labelIntern.Unlock()
	return len(labelIntern.m)
}

// Limits on hostile label sets: /ingest validates remote payloads, so
// the caps must hold for anything the wire can carry.
const (
	maxLabels      = 16
	maxLabelLength = 128
)

// ValidLabelName reports whether s is a usable label name: letters,
// digits and '_', not starting with a digit — the exposition-format
// label shape, so /metrics lines never need name escaping.
func ValidLabelName(s string) bool {
	if s == "" || len(s) > maxLabelLength {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ReservedLabelName reports whether name collides with a label the
// suite emits itself: /metrics writes source=, scope= and id= next to
// the structured set, and duplicate label names are invalid exposition
// format, so user labels must not shadow them.
func ReservedLabelName(name string) bool {
	return name == "source" || name == "scope" || name == "id"
}

// validLabelValue reports whether s can be a label value.  Values are
// free-form except for the characters that would make the canonical
// "name=value,..." encoding ambiguous (','), break the one-line formats
// ('"', control characters), and a length cap against hostile payloads.
func validLabelValue(s string) bool {
	if s == "" || len(s) > maxLabelLength {
		return false
	}
	for _, r := range s {
		if r < 0x20 || r == 0x7f || r == ',' || r == '"' {
			return false
		}
	}
	return true
}

// checkLabel validates one pair with a field-level error.
func checkLabel(name, value string) error {
	if !ValidLabelName(name) {
		return fmt.Errorf("monitor: bad label name %q (letters, digits, '_'; not starting with a digit; at most %d bytes)", name, maxLabelLength)
	}
	if ReservedLabelName(name) {
		return fmt.Errorf("monitor: label name %q is reserved (the suite emits source/scope/id labels itself)", name)
	}
	if !validLabelValue(value) {
		return fmt.Errorf("monitor: bad value %q for label %q (non-empty, no ',', '\"' or control characters, at most %d bytes)", value, name, maxLabelLength)
	}
	return nil
}

// encodePairs renders name-sorted pairs in the canonical
// "name=value,name=value" form — the one encoding shared by the intern
// identity, Labels.String, and FormatLabelMap.
func encodePairs(pairs []Label) string {
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Name)
		b.WriteByte('=')
		b.WriteString(p.Value)
	}
	return b.String()
}

// FormatLabelMap renders a label map in the canonical sorted
// "name=value,name=value" encoding — for callers (the alert log
// notifier) that hold the wire-shape map, not an interned handle.
func FormatLabelMap(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	pairs := make([]Label, 0, len(m))
	for name, value := range m {
		pairs = append(pairs, Label{Name: name, Value: value})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	return encodePairs(pairs)
}

// internLabels canonicalizes validated, name-sorted, duplicate-free
// pairs into the shared handle.  The table grows one entry per distinct
// set for the life of the process — the same order of growth as the
// store's series index, which keys on the sets it returns; callers must
// validate before interning so rejected input never lands here.
func internLabels(pairs []Label) Labels {
	if len(pairs) == 0 {
		return Labels{}
	}
	canon := encodePairs(pairs)
	labelIntern.Lock()
	defer labelIntern.Unlock()
	if set := labelIntern.m[canon]; set != nil {
		return Labels{set: set}
	}
	set := &labelSet{pairs: append([]Label(nil), pairs...), canon: canon}
	labelIntern.m[canon] = set
	return Labels{set: set}
}

// CheckLabelMap validates a wire label map without interning it, so an
// ingest batch can be screened all-or-nothing before any record's set
// is allowed to land in the process-wide intern table.
func CheckLabelMap(m map[string]string) error {
	if len(m) > maxLabels {
		return fmt.Errorf("monitor: %d labels exceed the limit of %d", len(m), maxLabels)
	}
	for name, value := range m {
		if err := checkLabel(name, value); err != nil {
			return err
		}
	}
	return nil
}

// MakeLabels validates and interns a label map; a nil or empty map is
// the empty set.  Any invalid pair rejects the whole set, so an ingest
// batch carrying it can 400 all-or-nothing.
func MakeLabels(m map[string]string) (Labels, error) {
	if len(m) == 0 {
		return Labels{}, nil
	}
	if err := CheckLabelMap(m); err != nil {
		return Labels{}, err
	}
	pairs := make([]Label, 0, len(m))
	for name, value := range m {
		pairs = append(pairs, Label{Name: name, Value: value})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	return internLabels(pairs), nil
}

// ParseLabelSpec parses the CLI form "name=value,name=value" (the
// likwid-agent -labels flag); empty input is the empty set.
func ParseLabelSpec(spec string) (Labels, error) {
	if strings.TrimSpace(spec) == "" {
		return Labels{}, nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) > maxLabels {
		return Labels{}, fmt.Errorf("monitor: %d labels exceed the limit of %d", len(parts), maxLabels)
	}
	pairs := make([]Label, 0, len(parts))
	seen := map[string]bool{}
	for _, part := range parts {
		name, value, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Labels{}, fmt.Errorf("monitor: bad label %q (want name=value)", part)
		}
		if err := checkLabel(name, value); err != nil {
			return Labels{}, err
		}
		if seen[name] {
			return Labels{}, fmt.Errorf("monitor: duplicate label %q", name)
		}
		seen[name] = true
		pairs = append(pairs, Label{Name: name, Value: value})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	return internLabels(pairs), nil
}

// Empty reports whether the set has no labels.
func (l Labels) Empty() bool { return l.set == nil }

// Len is the number of labels.
func (l Labels) Len() int {
	if l.set == nil {
		return 0
	}
	return len(l.set.pairs)
}

// Get returns the value of one label.
func (l Labels) Get(name string) (string, bool) {
	if l.set == nil {
		return "", false
	}
	for _, p := range l.set.pairs {
		if p.Name == name {
			return p.Value, true
		}
	}
	return "", false
}

// Pairs returns the labels sorted by name (a copy; the interned set is
// immutable).
func (l Labels) Pairs() []Label {
	if l.set == nil {
		return nil
	}
	return append([]Label(nil), l.set.pairs...)
}

// Map returns the labels as a map — the wire shape of the v3 push
// schema.  Nil for the empty set, so "labels" is omitted from
// unlabelled records and v2 payloads stay byte-identical.
func (l Labels) Map() map[string]string {
	if l.set == nil {
		return nil
	}
	m := make(map[string]string, len(l.set.pairs))
	for _, p := range l.set.pairs {
		m[p.Name] = p.Value
	}
	return m
}

// String is the canonical "name=value,name=value" encoding, sorted by
// name; empty for the empty set.  It is injective (values cannot
// contain ','), so it doubles as a sort key and a CSV cell.
func (l Labels) String() string {
	if l.set == nil {
		return ""
	}
	return l.set.canon
}

// MergeLabels overlays over on base: over wins per name.  The receiver
// uses it to stamp -labels defaults under each ingested sample's own
// labels, the scheduler to stamp the agent identity under a collector's
// own set.  The union of two valid sets can exceed maxLabels; paths
// that feed merged sets back onto the wire (the ingest default merge)
// must re-check the cap.
func MergeLabels(base, over Labels) Labels {
	if base.set == nil {
		return over
	}
	if over.set == nil {
		return base
	}
	return internLabels(mergePairs(base, over))
}

// mergePairs computes the sorted union of two non-empty interned sets
// without interning the result, so wire-facing callers can enforce the
// size cap before a hostile union reaches the intern table.
func mergePairs(base, over Labels) []Label {
	pairs := make([]Label, 0, len(base.set.pairs)+len(over.set.pairs))
	i, j := 0, 0
	for i < len(base.set.pairs) && j < len(over.set.pairs) {
		switch {
		case base.set.pairs[i].Name < over.set.pairs[j].Name:
			pairs = append(pairs, base.set.pairs[i])
			i++
		case base.set.pairs[i].Name > over.set.pairs[j].Name:
			pairs = append(pairs, over.set.pairs[j])
			j++
		default:
			pairs = append(pairs, over.set.pairs[j])
			i++
			j++
		}
	}
	pairs = append(pairs, base.set.pairs[i:]...)
	pairs = append(pairs, over.set.pairs[j:]...)
	return pairs
}

// MatchLabels reports whether a series' label set satisfies every
// selector: the label must be present and its value must match the
// selector's pattern ('*' runs wildcard, the suite's shared selector
// idiom).  No selectors match everything, labelled or not.
func MatchLabels(selectors []Label, l Labels) bool {
	for _, sel := range selectors {
		v, ok := l.Get(sel.Name)
		if !ok {
			return false
		}
		if !matchLabelValue(sel.Value, v) {
			return false
		}
	}
	return true
}

// MatchLabelMap is MatchLabels over a raw wire label map — the
// pre-intern form ingest routes see, so a route can match (and reject)
// a sample before anything reaches the intern table.
func MatchLabelMap(selectors []Label, m map[string]string) bool {
	for _, sel := range selectors {
		v, ok := m[sel.Name]
		if !ok {
			return false
		}
		if !matchLabelValue(sel.Value, v) {
			return false
		}
	}
	return true
}

// matchLabelValue matches one selector value pattern ('*' wildcards)
// against a label value.
func matchLabelValue(pattern, v string) bool {
	if strings.Contains(pattern, "*") {
		return WildcardMatch(pattern, v)
	}
	return pattern == v
}
