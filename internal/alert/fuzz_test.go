package alert

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// FuzzRuleSpec hammers the rule parser with arbitrary rule files: it
// must never panic, and every rule it does accept must render back
// (String) into a spec the parser accepts again, unchanged — the
// round-trip invariant that keeps /rules output and rule files
// interchangeable.
func FuzzRuleSpec(f *testing.F) {
	f.Add("mem_bw_low: avg(MEM_DP/bandwidth, socket, 30s) < 2.0e9 for 60s")
	f.Add("hot0: max(temp, thread, 3, 10s) >= 95 for 0s every 5s\nskew: imbalance(bw, socket, 30s) > 0.5 for 1m")
	f.Add(`q: rate("DP MFlops/s", node, 1m30s) <= 0 for 30s # comment`)
	f.Add("broken: avg(bw, node) < 1 for 0s")
	f.Add("r: avg(\"unterminated, node, 1s) < 1 for 0s")
	f.Add("r: avg(bw, node, 99999h) < 1e308 for 99999h")
	f.Add("# only a comment\n\n\n")
	f.Add("r: imbalance(bw, socket, 0, 1s) < 1 for 0s")
	f.Add("\x00\xff: avg(\x01, node, 1s) < 1 for 0s")
	f.Add("dup: avg(a, node, 1s) < 1 for 0s\ndup: avg(b, node, 1s) < 1 for 0s")
	f.Add(`j: avg(bw{job="lbm"}, node, 1s) < 1 for 0s`)
	f.Add(`j: avg(*/bw{job="lbm",cluster="em*"}, node, 1s) < 1 for 0s`)
	f.Add(`j: avg("DP MFlops/s"{job="l b m"}, node, 1s) < 1 for 0s`)
	f.Add(`bad: avg(bw{job=}, node, 1s) < 1 for 0s`)
	f.Add(`bad: avg(bw{job="a",job="b"}, node, 1s) < 1 for 0s`)
	f.Add("bad: avg(bw{}, node, 1s) < 1 for 0s")
	f.Fuzz(func(t *testing.T, src string) {
		rules, err := ParseRules(src)
		if err != nil {
			return
		}
		for _, r := range rules {
			spec := r.String()
			// Round-trip, gated to inputs the renderer can represent
			// verbatim: metrics whose quoting adds no escapes, and
			// durations small enough that the float64-seconds conversion
			// is exact (the engine stores seconds, not Durations).
			if strconv.Quote(r.Metric) != `"`+r.Metric+`"` {
				continue
			}
			if r.Lookback > 1e6 || r.For > 1e6 {
				continue
			}
			again, err := ParseRule(spec, r.Line)
			if err != nil {
				t.Fatalf("accepted rule %q renders as %q which does not reparse: %v",
					strings.TrimSpace(src), spec, err)
			}
			if !reflect.DeepEqual(again, r) {
				t.Fatalf("round trip changed the rule:\n src  %q\n spec %q\n got  %+v\n want %+v",
					strings.TrimSpace(src), spec, *again, *r)
			}
		}
	})
}
