package alert

import (
	"sync"
	"time"

	"likwid/internal/monitor"
)

// Publisher accepts firing/resolved events; Publish reports whether the
// event was accepted.  Fanout implements it, and Grouper wraps any
// Publisher, so delivery stages compose: engine → grouper → fanout →
// notifiers.
type Publisher interface {
	Publish(ev Event) bool
}

// gkey coalesces events of one rule in one state: a fleet rule tripping
// on 40 nodes at once is one incident, not 40 — but its resolves are a
// separate story and never merge with its fires.
type gkey struct {
	rule  string
	state string
}

// pending is one open group window.
type pending struct {
	events []Event
	stop   chan struct{}
}

// Grouper coalesces events for the same (rule, state) arriving within a
// wait window into one grouped event.  The first event of a group opens
// the window; when it closes, a lone event passes through unchanged and
// N>1 events become a single Event carrying all members in Instances —
// one webhook POST per incident instead of one per node.
//
// A zero wait disables grouping (events pass straight through), so the
// wiring can be unconditional.
type Grouper struct {
	next  Publisher
	wait  time.Duration
	clock monitor.Clock

	mu     sync.Mutex
	groups map[gkey]*pending
	closed bool
}

// NewGrouper wraps next; events for the same rule and state arriving
// within wait of the group's first event are delivered as one grouped
// event.  A clock of nil uses the wall clock.
func NewGrouper(next Publisher, wait time.Duration, clock monitor.Clock) *Grouper {
	if clock == nil {
		clock = monitor.RealClock
	}
	return &Grouper{
		next:   next,
		wait:   wait,
		clock:  clock,
		groups: map[gkey]*pending{},
	}
}

// Publish enqueues the event into its group, opening a window if none
// is pending.  It reports true when the event was taken by a window;
// the eventual downstream acceptance is the flush's business (the
// engine cannot wait on it).
func (g *Grouper) Publish(ev Event) bool {
	if g.wait <= 0 {
		return g.next.Publish(ev)
	}
	k := gkey{rule: ev.Rule, state: ev.State}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return g.next.Publish(ev)
	}
	if p := g.groups[k]; p != nil {
		p.events = append(p.events, ev)
		g.mu.Unlock()
		return true
	}
	p := &pending{events: []Event{ev}, stop: make(chan struct{})}
	g.groups[k] = p
	// The timer registers before Publish returns, so a fake clock
	// advanced right after cannot race past an unarmed window.
	timer := g.clock.After(g.wait)
	g.mu.Unlock()
	go func() {
		select {
		case <-timer:
			g.flush(k, p)
		case <-p.stop:
			// Close is flushing every group synchronously; this window's
			// events are already on their way.
		}
	}()
	return true
}

// flush closes one group window and delivers its contents; the pointer
// check makes it a no-op when Close already swept the group away.
func (g *Grouper) flush(k gkey, p *pending) {
	g.mu.Lock()
	if g.groups[k] != p {
		g.mu.Unlock()
		return
	}
	delete(g.groups, k)
	g.mu.Unlock()
	g.deliver(p.events)
}

// deliver forwards a closed window: one event unchanged, several as a
// single grouped event.
func (g *Grouper) deliver(events []Event) {
	if len(events) == 0 {
		return
	}
	if len(events) == 1 {
		g.next.Publish(events[0])
		return
	}
	// The grouped event wears the first member's identity (rule, state,
	// spec and threshold are identical across members by construction)
	// and the newest member's time; every member rides in Instances.
	ev := events[0]
	for _, m := range events[1:] {
		if m.Time > ev.Time {
			ev.Time = m.Time
		}
	}
	ev.Instances = events
	g.next.Publish(ev)
}

// Pending reports the number of open group windows.
func (g *Grouper) Pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.groups)
}

// Close flushes every open window synchronously and stops their timer
// goroutines.  Events published after Close bypass grouping — the
// shutdown path must not open windows nobody will close.
func (g *Grouper) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	groups := g.groups
	g.groups = map[gkey]*pending{}
	g.mu.Unlock()
	for _, p := range groups {
		close(p.stop)
		g.deliver(p.events)
	}
	return nil
}
