package memsys

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"likwid/internal/hwdef"
)

func TestWaterfillUnderCapacity(t *testing.T) {
	g := Waterfill(100, []float64{10, 20, 30})
	for i, want := range []float64{10, 20, 30} {
		if math.Abs(g[i]-want) > 1e-9 {
			t.Errorf("grant[%d] = %v, want %v (everyone fits)", i, g[i], want)
		}
	}
}

func TestWaterfillOverCapacity(t *testing.T) {
	// Demands 10, 100, 100 against capacity 90: the small demand is
	// satisfied, the rest split the remainder equally.
	g := Waterfill(90, []float64{10, 100, 100})
	if math.Abs(g[0]-10) > 1e-9 {
		t.Errorf("small demand got %v, want 10", g[0])
	}
	if math.Abs(g[1]-40) > 1e-9 || math.Abs(g[2]-40) > 1e-9 {
		t.Errorf("big demands got %v/%v, want 40/40", g[1], g[2])
	}
}

func TestWaterfillZeroCapacity(t *testing.T) {
	g := Waterfill(0, []float64{5, 5})
	if g[0] != 0 || g[1] != 0 {
		t.Errorf("grants = %v, want zeros", g)
	}
}

func TestWaterfillProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%8) + 1
		demands := make([]float64, k)
		for i := range demands {
			demands[i] = rng.Float64() * 50
		}
		capacity := rng.Float64() * 120
		g := Waterfill(capacity, demands)
		var sum float64
		for i := range g {
			if g[i] < -1e-9 || g[i] > demands[i]+1e-9 {
				return false // grant within [0, demand]
			}
			sum += g[i]
		}
		if sum > capacity+1e-6 {
			return false // capacity respected
		}
		// Work conservation: either all demands met or capacity is used.
		var totalDemand float64
		for _, d := range demands {
			totalDemand += d
		}
		if totalDemand <= capacity {
			return math.Abs(sum-totalDemand) < 1e-6
		}
		return math.Abs(sum-capacity) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWaterfillFairnessMonotonic(t *testing.T) {
	// A smaller demand never receives more than a bigger one.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := []float64{rng.Float64() * 40, rng.Float64() * 40, rng.Float64() * 40}
		g := Waterfill(50, d)
		for i := range d {
			for j := range d {
				if d[i] <= d[j] && g[i] > g[j]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArbitrateSaturation(t *testing.T) {
	s := New(hwdef.WestmereEP)
	bw := hwdef.WestmereEP.Perf.SocketMemBW
	// Six streaming cores on socket 0 demanding 7 GB/s each: the socket
	// controller saturates and grants sum to its capacity.
	var demands []Demand
	for i := 0; i < 6; i++ {
		demands = append(demands, Demand{Task: i, HomeSocket: 0, FromSocket: 0, Bytes: 7e9})
	}
	grants := s.Arbitrate(demands)
	var sum float64
	for _, g := range grants {
		sum += g.Bytes
	}
	if math.Abs(sum-bw) > bw*0.01 {
		t.Errorf("granted %v on a saturated socket, want ≈ %v", sum, bw)
	}
}

func TestArbitrateTwoSocketsIndependent(t *testing.T) {
	s := New(hwdef.WestmereEP)
	grants := s.Arbitrate([]Demand{
		{Task: 0, HomeSocket: 0, FromSocket: 0, Bytes: 30e9},
		{Task: 1, HomeSocket: 1, FromSocket: 1, Bytes: 30e9},
	})
	bw := hwdef.WestmereEP.Perf.SocketMemBW
	for _, g := range grants {
		if math.Abs(g.Bytes-bw) > bw*0.01 {
			t.Errorf("task %d granted %v, want ≈ %v (own controller)", g.Task, g.Bytes, bw)
		}
	}
}

func TestArbitrateRemotePenalty(t *testing.T) {
	s := New(hwdef.WestmereEP)
	local := s.Arbitrate([]Demand{{HomeSocket: 0, FromSocket: 0, Bytes: 30e9}})[0].Bytes
	remote := s.Arbitrate([]Demand{{HomeSocket: 0, FromSocket: 1, Bytes: 30e9}})[0].Bytes
	if remote >= local {
		t.Fatalf("remote grant %v >= local %v; QPI penalty missing", remote, local)
	}
	want := local * hwdef.WestmereEP.Perf.RemoteFactor
	if math.Abs(remote-want) > want*0.05 {
		t.Errorf("remote grant %v, want ≈ %v", remote, want)
	}
}

func TestArbitrateNTStoresCostMore(t *testing.T) {
	s := New(hwdef.NehalemEP)
	reg := s.Arbitrate([]Demand{{HomeSocket: 0, FromSocket: 0, Bytes: 30e9}})[0].Bytes
	nt := s.Arbitrate([]Demand{{HomeSocket: 0, FromSocket: 0, Bytes: 30e9, NTFraction: 1}})[0].Bytes
	if nt >= reg {
		t.Fatalf("pure NT stream granted %v >= regular %v", nt, reg)
	}
	want := reg * hwdef.NehalemEP.Perf.NTStoreEfficiency
	if math.Abs(nt-want) > want*0.05 {
		t.Errorf("NT grant %v, want ≈ %v", nt, want)
	}
}

func TestSingleStreamCap(t *testing.T) {
	s := New(hwdef.NehalemEP)
	p := hwdef.NehalemEP.Perf
	if got := s.SingleStreamCap(1, true); got != p.SingleStreamBW {
		t.Errorf("1 stream cap = %v, want %v", got, p.SingleStreamBW)
	}
	if got := s.SingleStreamCap(3, true); got != p.CoreTriadBW {
		t.Errorf("vector cap = %v, want %v", got, p.CoreTriadBW)
	}
	if got := s.SingleStreamCap(3, false); got != p.CoreScalarBW {
		t.Errorf("scalar cap = %v, want %v", got, p.CoreScalarBW)
	}
}

func TestValidateAll(t *testing.T) {
	for _, n := range hwdef.Names() {
		a, _ := hwdef.Lookup(n)
		if err := New(a).Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}
