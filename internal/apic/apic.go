// Package apic constructs and decomposes APIC IDs.
//
// On x86 the APIC ID of a hardware thread encodes its position in the
// package/core/SMT hierarchy as bit fields: the lowest bits select the SMT
// thread within a core, the next field selects the core within a package,
// and the remaining high bits select the package.  likwid-topology recovers
// the node topology by slicing these fields, using the field widths reported
// by CPUID (leaf 0xB on Nehalem+, leaves 0x1/0x4 before that).
package apic

import (
	"fmt"

	"likwid/internal/hwdef"
)

// Layout describes the bit-field widths of an APIC ID for one architecture.
type Layout struct {
	SMTBits  int // width of the SMT-thread field
	CoreBits int // width of the core field
}

// CeilLog2 returns the number of bits needed to represent values 0..n-1.
// CeilLog2(1) is 0: a field that can hold only one value needs no bits.
func CeilLog2(n int) int {
	bits := 0
	for v := 1; v < n; v <<= 1 {
		bits++
	}
	return bits
}

// LayoutFor derives the APIC bit layout for an architecture.  The core field
// must be wide enough for the largest physical core ID, which is how
// non-contiguous core numbering (e.g. {0,1,2,8,9,10} on Westmere EP) arises.
func LayoutFor(a *hwdef.Arch) Layout {
	maxCore := 0
	for _, id := range a.PhysCoreIDs {
		if id > maxCore {
			maxCore = id
		}
	}
	return Layout{
		SMTBits:  CeilLog2(a.ThreadsPerCore),
		CoreBits: CeilLog2(maxCore + 1),
	}
}

// CoreShift is the bit position where the core field starts.
func (l Layout) CoreShift() int { return l.SMTBits }

// PkgShift is the bit position where the package field starts.
func (l Layout) PkgShift() int { return l.SMTBits + l.CoreBits }

// Compose builds the APIC ID for (socket, physical core ID, SMT thread).
func (l Layout) Compose(socket, physCore, smt int) uint32 {
	return uint32(socket)<<l.PkgShift() | uint32(physCore)<<l.CoreShift() | uint32(smt)
}

// Decoded is the hierarchical position recovered from an APIC ID.
type Decoded struct {
	Socket   int
	PhysCore int
	SMT      int
}

// Decode slices an APIC ID back into its fields.
func (l Layout) Decode(id uint32) Decoded {
	return Decoded{
		Socket:   int(id >> l.PkgShift()),
		PhysCore: int(id>>l.CoreShift()) & (1<<l.CoreBits - 1),
		SMT:      int(id) & (1<<l.SMTBits - 1),
	}
}

// ThreadInfo places one hardware thread (one OS processor) in the node.
type ThreadInfo struct {
	Proc     int    // OS processor ID as the kernel numbers it
	Socket   int    // package index
	CoreIdx  int    // core index within the socket (0..CoresPerSocket-1)
	PhysCore int    // physical (APIC) core ID, possibly non-contiguous
	SMT      int    // SMT thread index within the core
	APICID   uint32 // composed APIC ID
}

// Enumerate lists every hardware thread of the node in OS processor-ID
// order.  The numbering policy matches the systems in the paper: thread 0 of
// every core across all sockets first, then the SMT siblings — so on a
// 2-socket 6-core SMT-2 Westmere, processors 0-11 are the physical cores and
// 12-23 their hyperthreads.
func Enumerate(a *hwdef.Arch) []ThreadInfo {
	l := LayoutFor(a)
	threads := make([]ThreadInfo, 0, a.HWThreads())
	proc := 0
	for smt := 0; smt < a.ThreadsPerCore; smt++ {
		for socket := 0; socket < a.Sockets; socket++ {
			for coreIdx, physCore := range a.PhysCoreIDs {
				threads = append(threads, ThreadInfo{
					Proc:     proc,
					Socket:   socket,
					CoreIdx:  coreIdx,
					PhysCore: physCore,
					SMT:      smt,
					APICID:   l.Compose(socket, physCore, smt),
				})
				proc++
			}
		}
	}
	return threads
}

// ByProc returns the ThreadInfo for one OS processor ID.
func ByProc(a *hwdef.Arch, proc int) (ThreadInfo, error) {
	threads := Enumerate(a)
	if proc < 0 || proc >= len(threads) {
		return ThreadInfo{}, fmt.Errorf("apic: processor %d out of range [0,%d)", proc, len(threads))
	}
	return threads[proc], nil
}
