package cache

import "sync"

// prefetchUnit is one hardware prefetcher attached to a cache level.  Units
// observe demand accesses and may pull additional lines into the level.
type prefetchUnit interface {
	onAccess(l *Level, addr uint64, ip uint64, miss bool)
}

// Enabled gates a prefetch unit; likwid-features wires this to the
// corresponding IA32_MISC_ENABLE bit so toggles take effect immediately.
type Enabled func() bool

// AttachAdjacentLine adds the adjacent-cache-line prefetcher
// (CL_PREFETCHER): every demand miss also fetches the buddy line that
// completes the naturally aligned 128-byte pair.
func (l *Level) AttachAdjacentLine(enabled Enabled) {
	l.mu.Lock()
	l.prefetchers = append(l.prefetchers, &adjacentLine{enabled: enabled})
	l.mu.Unlock()
}

type adjacentLine struct {
	enabled Enabled
}

func (p *adjacentLine) onAccess(l *Level, addr uint64, _ uint64, miss bool) {
	if !miss || !p.enabled() {
		return
	}
	ls := uint64(l.cfg.LineSize)
	buddy := (addr / ls) ^ 1
	l.prefetchLine(buddy * ls)
}

// AttachStreamer adds the streaming prefetcher (HW_PREFETCHER on L2,
// DCU_PREFETCHER on L1): it tracks misses per 4 KiB page and, once two
// sequential misses establish a direction, runs `depth` lines ahead.
func (l *Level) AttachStreamer(enabled Enabled, depth int) {
	if depth < 1 {
		depth = 2
	}
	l.mu.Lock()
	l.prefetchers = append(l.prefetchers, &streamer{
		enabled: enabled,
		depth:   depth,
		pages:   make(map[uint64]*streamState),
	})
	l.mu.Unlock()
}

type streamState struct {
	lastLine uint64
	dir      int64
	trained  bool
}

type streamer struct {
	enabled Enabled
	depth   int
	mu      sync.Mutex
	pages   map[uint64]*streamState
}

const pageSize = 4096

func (p *streamer) onAccess(l *Level, addr uint64, _ uint64, miss bool) {
	if !p.enabled() {
		return
	}
	ls := uint64(l.cfg.LineSize)
	lineAddr := addr / ls
	page := addr / pageSize

	p.mu.Lock()
	st, ok := p.pages[page]
	if !ok {
		if len(p.pages) > 64 { // bounded tracker table, like real hardware
			p.pages = make(map[uint64]*streamState)
		}
		p.pages[page] = &streamState{lastLine: lineAddr}
		p.mu.Unlock()
		return
	}
	delta := int64(lineAddr) - int64(st.lastLine)
	st.lastLine = lineAddr
	if delta == 1 || delta == -1 {
		if st.dir == delta {
			st.trained = true
		}
		st.dir = delta
	} else if delta != 0 {
		st.trained = false
		st.dir = 0
	}
	trained, dir := st.trained, st.dir
	p.mu.Unlock()

	if !trained || !miss && dir == 0 {
		return
	}
	if trained {
		for i := 1; i <= p.depth; i++ {
			next := int64(lineAddr) + dir*int64(i)
			if next < 0 {
				break
			}
			// Streamers do not cross 4 KiB page boundaries.
			if uint64(next)*ls/pageSize != page {
				break
			}
			l.prefetchLine(uint64(next) * ls)
		}
	}
}

// AttachIPStride adds the instruction-pointer strided prefetcher
// (IP_PREFETCHER): per load instruction it learns a constant stride and
// prefetches one stride ahead once the stride repeats.
func (l *Level) AttachIPStride(enabled Enabled) {
	l.mu.Lock()
	l.prefetchers = append(l.prefetchers, &ipStride{
		enabled: enabled,
		table:   make(map[uint64]*ipState),
	})
	l.mu.Unlock()
}

type ipState struct {
	lastAddr uint64
	stride   int64
	count    int
}

type ipStride struct {
	enabled Enabled
	mu      sync.Mutex
	table   map[uint64]*ipState
}

func (p *ipStride) onAccess(l *Level, addr uint64, ip uint64, _ bool) {
	if ip == 0 || !p.enabled() {
		return
	}
	p.mu.Lock()
	st, ok := p.table[ip]
	if !ok {
		if len(p.table) > 256 {
			p.table = make(map[uint64]*ipState)
		}
		p.table[ip] = &ipState{lastAddr: addr}
		p.mu.Unlock()
		return
	}
	stride := int64(addr) - int64(st.lastAddr)
	if stride == st.stride && stride != 0 {
		st.count++
	} else {
		st.count = 0
	}
	st.stride = stride
	st.lastAddr = addr
	fire := st.count >= 2
	p.mu.Unlock()

	if fire {
		next := int64(addr) + stride
		if next > 0 {
			l.prefetchLine(uint64(next))
		}
	}
}
